//! Reusable simulation topologies for the event-driven experiments.

use inc_dns::{DnsClient, DnsServer, DnsServerConfig, EmuDevice, Zone, DNS_PORT};
use inc_hw::{
    DeviceFabric, DeviceId, PipelineBudget, Placement, ProgramResources, TierCost, Topology,
    HOST_DMA_PORT,
};
use inc_kvs::{
    expected_value, key_name, KvsClient, LakeCacheConfig, LakeDevice, MemcachedConfig,
    MemcachedServer, OpGen, UniformGen, MEMCACHED_PORT,
};
use inc_net::{Endpoint, Packet};
use inc_net::{L2Switch, Match};
use inc_ondemand::{
    run_fleet_controlled_with, AppObservation, ArbiterConfig, ArbitrationMode, ClaimPolicy,
    FleetApp, FleetController, FleetControllerConfig, FleetSample, FleetTimeline,
    HierarchicalController, HostSample, PlacementAnalysis, RowLog,
};
use inc_paxos::{
    Acceptor, AcceptorStorage, AddressBook, HostConfig, Leader, Learner, PaxosClient, PaxosNode,
    Platform, RoleEngine, PAXOS_ACCEPTOR_PORT, PAXOS_LEADER_PORT, PAXOS_LEARNER_PORT,
};
use inc_power::{calib, EnergyParams, LinkEnergyModel};
use inc_sim::{LinkSpec, Nanos, Node, NodeId, PortId, Rng, Simulator};
use inc_workloads::{RateProfile, Zipf};
use std::cell::Cell;

/// The Figure 1 KVS topology: client ↔ LaKe ↔ memcached.
pub struct KvsRig {
    /// The simulator.
    pub sim: Simulator<Packet>,
    /// Load generator node.
    pub client: NodeId,
    /// LaKe card node.
    pub device: NodeId,
    /// memcached host node.
    pub server: NodeId,
}

impl KvsRig {
    /// Builds the rig with `keys` preloaded keys of `value_len` bytes and
    /// an arbitrary op generator.
    pub fn new(
        seed: u64,
        rate_pps: f64,
        keys: u64,
        value_len: usize,
        gen: Box<dyn OpGen>,
        hardware: bool,
    ) -> Self {
        let mut sim = Simulator::new(seed);
        let client_ep = Endpoint::host(1, 40_000);
        let server_ep = Endpoint::host(2, MEMCACHED_PORT);
        let mut server = MemcachedServer::new(MemcachedConfig::i7_behind_lake());
        server.preload((0..keys).map(|i| {
            let k = key_name(i);
            let v = expected_value(&k, value_len);
            (k, v)
        }));
        let server = sim.add_node(server);
        let mut dev = LakeDevice::new(LakeCacheConfig::tiny(2_048, 65_536), 5);
        if hardware {
            dev = dev.started_in_hardware();
        }
        let device = sim.add_node(dev);
        let client = sim.add_node(KvsClient::open_loop(client_ep, server_ep, rate_pps, gen));
        sim.connect_duplex(
            client,
            PortId::P0,
            device,
            PortId::P0,
            LinkSpec::ten_gbe(Nanos::from_nanos(500)),
        );
        sim.connect_duplex(device, HOST_DMA_PORT, server, PortId::P0, LinkSpec::ideal());
        KvsRig {
            sim,
            client,
            device,
            server,
        }
    }
}

/// The DNS topology: client ↔ Emu ↔ NSD, sharing one zone.
pub struct DnsRig {
    /// The simulator.
    pub sim: Simulator<Packet>,
    /// Query generator node.
    pub client: NodeId,
    /// Emu DNS card node.
    pub device: NodeId,
    /// NSD host node.
    pub server: NodeId,
}

impl DnsRig {
    /// Builds the rig over a synthetic zone of `names` records.
    pub fn new(seed: u64, rate_pps: f64, names: u64, hardware: bool) -> Self {
        let mut sim = Simulator::new(seed);
        let zone = Zone::synthetic(names);
        let server = sim.add_node(DnsServer::new(
            DnsServerConfig::nsd_behind_emu(),
            zone.clone(),
        ));
        let mut dev = EmuDevice::new(zone);
        if hardware {
            dev = dev.started_in_hardware();
        }
        let device = sim.add_node(dev);
        let client = sim.add_node(DnsClient::new(
            Endpoint::host(1, 40_000),
            Endpoint::host(2, inc_dns::DNS_PORT),
            rate_pps,
            names,
        ));
        sim.connect_duplex(
            client,
            PortId::P0,
            device,
            PortId::P0,
            LinkSpec::ten_gbe(Nanos::from_nanos(500)),
        );
        sim.connect_duplex(device, HOST_DMA_PORT, server, PortId::P0, LinkSpec::ideal());
        DnsRig {
            sim,
            client,
            device,
            server,
        }
    }
}

/// The Figure 7 Paxos topology: clients + software/hardware leaders +
/// three acceptors + learner, joined by a steerable switch.
pub struct PaxosRig {
    /// The simulator.
    pub sim: Simulator<Packet>,
    /// The switch.
    pub switch: NodeId,
    /// Closed-loop clients.
    pub clients: Vec<NodeId>,
    /// The libpaxos leader node.
    pub sw_leader: NodeId,
    /// The P4xos (FPGA) leader node.
    pub hw_leader: NodeId,
    /// Acceptor nodes.
    pub acceptors: Vec<NodeId>,
    /// Learner node.
    pub learner: NodeId,
    /// Switch port of the software leader.
    pub sw_leader_port: PortId,
    /// Switch port of the hardware leader.
    pub hw_leader_port: PortId,
    next_round: u16,
}

impl PaxosRig {
    const N_ACCEPTORS: usize = 3;

    fn book(own: Endpoint) -> AddressBook {
        AddressBook {
            own,
            leader: Endpoint::host(99, PAXOS_LEADER_PORT),
            acceptors: (0..Self::N_ACCEPTORS as u32)
                .map(|i| Endpoint::host(10 + i, PAXOS_ACCEPTOR_PORT))
                .collect(),
            learners: vec![Endpoint::host(30, PAXOS_LEARNER_PORT)],
        }
    }

    /// Builds the rig with `n_clients` closed-loop clients (one
    /// outstanding command each) and the given retry timeout.
    pub fn new(seed: u64, n_clients: u32, timeout: Nanos) -> Self {
        let mut sim = Simulator::new(seed);
        let n_ports = 4 + n_clients as u16 + Self::N_ACCEPTORS as u16;
        let switch = sim.add_node(L2Switch::new(n_ports));
        let mut next_port = 0u16;
        let mut attach = |sim: &mut Simulator<Packet>, node: NodeId| -> PortId {
            let p = PortId(next_port);
            next_port += 1;
            sim.connect_duplex(
                node,
                PortId::P0,
                switch,
                p,
                LinkSpec::ten_gbe(Nanos::from_micros(1)),
            );
            p
        };
        let sw_leader = sim.add_node(PaxosNode::new(
            RoleEngine::Leader(Leader::bootstrap(1, Self::N_ACCEPTORS)),
            Platform::host(HostConfig::libpaxos_leader()),
            Self::book(Endpoint::host(20, PAXOS_LEADER_PORT)),
        ));
        let sw_leader_port = attach(&mut sim, sw_leader);
        let hw_leader = sim.add_node(PaxosNode::new(
            RoleEngine::Idle,
            Platform::fpga(),
            Self::book(Endpoint::host(21, PAXOS_LEADER_PORT)),
        ));
        let hw_leader_port = attach(&mut sim, hw_leader);
        let mut acceptors = Vec::new();
        for i in 0..Self::N_ACCEPTORS as u32 {
            let ep = Endpoint::host(10 + i, PAXOS_ACCEPTOR_PORT);
            let n = sim.add_node(PaxosNode::new(
                RoleEngine::Acceptor(Acceptor::new(i as u8, AcceptorStorage::unbounded())),
                Platform::host(HostConfig::libpaxos_acceptor()),
                Self::book(ep),
            ));
            attach(&mut sim, n);
            acceptors.push(n);
        }
        let learner = sim.add_node(PaxosNode::new(
            RoleEngine::Learner(Learner::new(Self::N_ACCEPTORS)),
            Platform::host(HostConfig::libpaxos_learner()),
            Self::book(Endpoint::host(30, PAXOS_LEARNER_PORT)),
        ));
        attach(&mut sim, learner);
        let mut clients = Vec::new();
        for id in 0..n_clients {
            let c = sim.add_node(PaxosClient::new(
                100 + id,
                Endpoint::host(99, PAXOS_LEADER_PORT),
                1,
                timeout,
            ));
            attach(&mut sim, c);
            clients.push(c);
        }
        sim.node_mut::<L2Switch>(switch)
            .steer(Match::udp_dst(PAXOS_LEADER_PORT), sw_leader_port);
        PaxosRig {
            sim,
            switch,
            clients,
            sw_leader,
            hw_leader,
            acceptors,
            learner,
            sw_leader_port,
            hw_leader_port,
            next_round: 2,
        }
    }

    /// Shifts the leader role to the hardware node (§9.2).
    ///
    /// Rule replacement is not atomic in a real switch: the old leader is
    /// stopped first, and for a brief window leader-bound traffic still
    /// reaches it and is lost — the loss the client retry timeout covers
    /// (the ~100 ms zero-throughput dip of Figure 7).
    pub fn shift_leader_to_hardware(&mut self) {
        self.shift_leader(
            self.sw_leader,
            self.hw_leader,
            self.sw_leader_port,
            self.hw_leader_port,
        );
    }

    /// Shifts the leader role back to the software node.
    pub fn shift_leader_to_software(&mut self) {
        self.shift_leader(
            self.hw_leader,
            self.sw_leader,
            self.hw_leader_port,
            self.sw_leader_port,
        );
    }

    fn shift_leader(&mut self, from: NodeId, to: NodeId, from_port: PortId, to_port: PortId) {
        let round = self.next_round;
        self.next_round += 1;
        // Stop the old leader; traffic keeps flowing to it (and dying)
        // while the controller replaces the forwarding rule.
        self.sim.node_mut::<PaxosNode>(from).deactivate();
        let now = self.sim.now();
        self.sim.run_until(now + Nanos::from_millis(1));
        {
            let sw = self.sim.node_mut::<L2Switch>(self.switch);
            sw.unsteer_port(from_port);
            sw.steer(Match::udp_dst(PAXOS_LEADER_PORT), to_port);
        }
        self.sim
            .with_node_ctx::<PaxosNode, _>(to, |n, ctx| n.activate_leader(ctx, round));
    }

    /// Total commands acknowledged across clients.
    pub fn total_acked(&self) -> u64 {
        self.clients
            .iter()
            .map(|&c| self.sim.node_ref::<PaxosClient>(c).stats().acked)
            .sum()
    }
}

/// The shared-device topology: KVS and DNS tenants contending for one
/// capacity-bounded programmable device.
///
/// The physical card is modelled as two logical partitions — the LaKe
/// engine serving memcached traffic and the Emu core serving DNS — each a
/// bump-in-the-wire in front of its software server. Whether a
/// partition's program may be *resident* (hardware placement) is decided
/// by the `FleetController`'s shared [`inc_hw::DeviceCapacity`] ledger: the
/// [`SharedDeviceRig::shared_budget`] admits either program alone but not
/// both, so every offload is an arbitration decision. The shell base
/// power appears once per partition; it is a constant offset common to
/// every placement configuration, so energy *comparisons* between
/// schedules are unaffected.
pub struct SharedDeviceRig {
    /// The simulator.
    pub sim: Simulator<Packet>,
    /// KVS load generator.
    pub kvs_client: NodeId,
    /// LaKe partition of the shared card.
    pub kvs_device: NodeId,
    /// memcached host node.
    pub kvs_server: NodeId,
    /// DNS query generator.
    pub dns_client: NodeId,
    /// Emu partition of the shared card.
    pub dns_device: NodeId,
    /// NSD host node.
    pub dns_server: NodeId,
    /// Offered-rate schedule of the KVS tenant.
    pub kvs_profile: RateProfile,
    /// Offered-rate schedule of the DNS tenant.
    pub dns_profile: RateProfile,
}

impl SharedDeviceRig {
    /// Index of the KVS tenant in the fleet's app vector.
    pub const KVS_APP: usize = 0;
    /// Index of the DNS tenant in the fleet's app vector.
    pub const DNS_APP: usize = 1;

    /// Rate at which the (linearised) software power fit is anchored.
    const KVS_FIT_PPS: f64 = 200_000.0;
    const DNS_FIT_PPS: f64 = 150_000.0;

    /// The canonical contended scenario: two offset diurnal days over
    /// `period` — the KVS peaks at ~0.29 of the day, the DNS at ~0.63 —
    /// whose busy windows overlap enough that the hand-over is an
    /// arbitration decision rather than two disjoint bursts. Shared by
    /// the e2e test, the example, and the criterion bench so they all
    /// exercise the same scenario.
    pub fn contended_profiles(period: Nanos) -> (RateProfile, RateProfile) {
        (
            RateProfile::diurnal(
                2_000.0,
                120_000.0,
                period,
                period.mul_f64(3.0 / 14.0),
                3,
                64,
            ),
            RateProfile::diurnal(
                2_000.0,
                80_000.0,
                period,
                period.mul_f64(61.0 / 70.0),
                3,
                64,
            ),
        )
    }

    /// Builds the rig: both tenants preloaded and idling in software.
    pub fn new(
        seed: u64,
        keys: u64,
        names: u64,
        kvs_profile: RateProfile,
        dns_profile: RateProfile,
    ) -> Self {
        let mut sim = Simulator::new(seed);

        // KVS slice.
        let mut server = MemcachedServer::new(MemcachedConfig::i7_behind_lake());
        server.preload((0..keys).map(|i| {
            let k = key_name(i);
            let v = expected_value(&k, 64);
            (k, v)
        }));
        let kvs_server = sim.add_node(server);
        let kvs_device = sim.add_node(LakeDevice::new(LakeCacheConfig::tiny(2_048, 65_536), 5));
        let kvs_client = sim.add_node(KvsClient::open_loop(
            Endpoint::host(1, 40_000),
            Endpoint::host(2, MEMCACHED_PORT),
            kvs_profile.rate_at(Nanos::ZERO),
            Box::new(UniformGen {
                keys,
                get_ratio: 0.97,
                value_len: 64,
            }),
        ));
        sim.connect_duplex(
            kvs_client,
            PortId::P0,
            kvs_device,
            PortId::P0,
            LinkSpec::ten_gbe(Nanos::from_nanos(500)),
        );
        sim.connect_duplex(
            kvs_device,
            HOST_DMA_PORT,
            kvs_server,
            PortId::P0,
            LinkSpec::ideal(),
        );

        // DNS slice.
        let zone = Zone::synthetic(names);
        let dns_server = sim.add_node(DnsServer::new(
            DnsServerConfig::nsd_behind_emu(),
            zone.clone(),
        ));
        let dns_device = sim.add_node(EmuDevice::new(zone));
        let dns_client = sim.add_node(DnsClient::new(
            Endpoint::host(3, 41_000),
            Endpoint::host(4, DNS_PORT),
            dns_profile.rate_at(Nanos::ZERO),
            names,
        ));
        sim.connect_duplex(
            dns_client,
            PortId::P0,
            dns_device,
            PortId::P0,
            LinkSpec::ten_gbe(Nanos::from_nanos(500)),
        );
        sim.connect_duplex(
            dns_device,
            HOST_DMA_PORT,
            dns_server,
            PortId::P0,
            LinkSpec::ideal(),
        );

        SharedDeviceRig {
            sim,
            kvs_client,
            kvs_device,
            kvs_server,
            dns_client,
            dns_device,
            dns_server,
            kvs_profile,
            dns_profile,
        }
    }

    /// The shared device budget: a Tofino-class pipeline that admits
    /// either tenant's program alone but not both (13 stages > 12,
    /// 60 MB SRAM > 48 MB).
    pub fn shared_budget() -> PipelineBudget {
        PipelineBudget::tofino_like()
    }

    /// The LaKe program's capacity claim: SRAM-bound (hash table plus
    /// value-store tables claim most of the device's stateful memory).
    pub fn kvs_demand() -> ProgramResources {
        ProgramResources {
            stages: 7,
            sram_bytes: 40 << 20,
            parse_depth_bytes: 96,
        }
    }

    /// The Emu program's capacity claim: stage-bound (name parsing burns
    /// pipeline stages, the record table is modest).
    pub fn dns_demand() -> ProgramResources {
        ProgramResources {
            stages: 6,
            sram_bytes: 20 << 20,
            parse_depth_bytes: 128,
        }
    }

    /// The §8 benefit analyses for both tenants, with the *shared-NIC*
    /// economics: the card is present in both placements (it is the
    /// host's NIC), so software placement pays the parked card while
    /// hardware placement pays the unparked card — the idle terms are the
    /// measured parked/unparked powers of the calibrated device models,
    /// and the software dynamic term is the host CPU model linearised at
    /// the fit anchor.
    pub fn fleet_apps() -> Vec<FleetApp> {
        // Parked vs unparked powers, measured from the device models
        // exactly as the simulation will meter them.
        let lake_cfg = LakeCacheConfig::tiny(8, 32);
        let lake_parked = LakeDevice::new(lake_cfg, 5).power_w(Nanos::ZERO);
        let lake_active = LakeDevice::new(lake_cfg, 5)
            .started_in_hardware()
            .power_w(Nanos::ZERO);
        let emu_parked = EmuDevice::new(Zone::synthetic(1)).power_w(Nanos::ZERO);
        let emu_active = EmuDevice::new(Zone::synthetic(1))
            .started_in_hardware()
            .power_w(Nanos::ZERO);

        let mc = MemcachedConfig::i7_behind_lake();
        let kvs_sw_idle = calib::I7_PLATFORM_IDLE_W + lake_parked;
        let kvs_dyn_at_fit = mc
            .cpu
            .dynamic_w(Self::KVS_FIT_PPS * mc.service_time.as_secs_f64());
        let kvs_hw_idle = calib::I7_PLATFORM_IDLE_W + lake_active;

        let nsd = DnsServerConfig::nsd_behind_emu();
        let dns_sw_idle = calib::I7_PLATFORM_IDLE_W + emu_parked;
        let dns_dyn_at_fit = nsd
            .cpu
            .dynamic_w(Self::DNS_FIT_PPS * nsd.service_time.as_secs_f64());
        let dns_hw_idle = calib::I7_PLATFORM_IDLE_W + emu_active;

        vec![
            FleetApp {
                name: "kvs".into(),
                demand: Self::kvs_demand(),
                home: DeviceId::LOCAL,
                weight: 1.0,
                analysis: PlacementAnalysis {
                    software: EnergyParams {
                        idle_w: kvs_sw_idle,
                        sleep_w: 0.0,
                        active_w: kvs_sw_idle + kvs_dyn_at_fit,
                        peak_rate_pps: Self::KVS_FIT_PPS,
                    },
                    network: EnergyParams {
                        idle_w: kvs_hw_idle,
                        sleep_w: 0.0,
                        active_w: kvs_hw_idle + calib::LAKE_DYNAMIC_MAX_W,
                        peak_rate_pps: calib::LAKE_LINE_RATE_PPS,
                    },
                },
            },
            FleetApp {
                name: "dns".into(),
                demand: Self::dns_demand(),
                home: DeviceId::LOCAL,
                weight: 1.0,
                analysis: PlacementAnalysis {
                    software: EnergyParams {
                        idle_w: dns_sw_idle,
                        sleep_w: 0.0,
                        active_w: dns_sw_idle + dns_dyn_at_fit,
                        peak_rate_pps: Self::DNS_FIT_PPS,
                    },
                    network: EnergyParams {
                        idle_w: dns_hw_idle,
                        sleep_w: 0.0,
                        active_w: dns_hw_idle + calib::EMU_DNS_DYNAMIC_MAX_W,
                        peak_rate_pps: calib::EMU_DNS_PEAK_RPS,
                    },
                },
            },
        ]
    }

    /// A fleet controller over the shared budget with the standard
    /// hysteresis settings.
    pub fn fleet_controller(interval: Nanos) -> FleetController {
        FleetController::new(
            FleetControllerConfig::standard(interval),
            DeviceFabric::single(Self::shared_budget()),
            Self::fleet_apps(),
        )
    }

    /// A controller pinned to a fixed placement vector (the static
    /// baselines the on-demand schedule is judged against): an infinite
    /// sustain window means no condition ever completes.
    pub fn pinned_controller(interval: Nanos, placements: [Placement; 2]) -> FleetController {
        let config = FleetControllerConfig {
            sustain_samples: u32::MAX,
            ..FleetControllerConfig::standard(interval)
        };
        FleetController::new(
            config,
            DeviceFabric::single(Self::shared_budget()),
            Self::fleet_apps(),
        )
        .with_initial_placements(&placements)
    }

    /// Runs the experiment until `until` under `controller`, driving both
    /// tenants' diurnal schedules and recording per-app timelines plus
    /// total metered energy (each tenant's device partition and server).
    pub fn run(&mut self, controller: &mut FleetController, until: Nanos) -> FleetTimeline {
        self.run_with(controller, until, RowLog::Full)
    }

    /// [`SharedDeviceRig::run`] with an explicit timeline row-retention
    /// mode (the streaming-equivalence tests drive both).
    pub fn run_with(
        &mut self,
        controller: &mut FleetController,
        until: Nanos,
        mode: RowLog,
    ) -> FleetTimeline {
        // Execute any pre-seeded placements on the simulated hardware.
        let now = self.sim.now();
        if controller.placements()[Self::KVS_APP].is_offloaded() {
            self.sim
                .node_mut::<LakeDevice>(self.kvs_device)
                .apply_placement(now, Placement::HARDWARE);
        }
        if controller.placements()[Self::DNS_APP].is_offloaded() {
            self.sim
                .node_mut::<EmuDevice>(self.dns_device)
                .apply_placement(now, Placement::HARDWARE);
        }
        let interval = controller.config().interval;
        let (kvs_client, kvs_device, kvs_server) =
            (self.kvs_client, self.kvs_device, self.kvs_server);
        let (dns_client, dns_device, dns_server) =
            (self.dns_client, self.dns_device, self.dns_server);
        let kvs_profile = self.kvs_profile.clone();
        let dns_profile = self.dns_profile.clone();
        run_fleet_controlled_with(
            &mut self.sim,
            controller,
            until,
            mode,
            |sim| {
                let now = sim.now();
                // Follow the offered-rate schedules.
                sim.node_mut::<KvsClient>(kvs_client)
                    .set_rate(kvs_profile.rate_at(now));
                sim.node_mut::<DnsClient>(dns_client)
                    .set_rate(dns_profile.rate_at(now));
                // The host-measured arrival rate over the elapsed interval
                // (sampled at its midpoint): completions would understate
                // offered load whenever the software server saturates —
                // exactly when offloading matters most.
                let mid = now - interval.mul_f64(0.5);
                let kvs_offered = kvs_profile.rate_at(mid);
                let dns_offered = dns_profile.rate_at(mid);
                let (kvs_done, kvs_lat) = sim.node_mut::<KvsClient>(kvs_client).take_window();
                let (dns_done, dns_lat) = sim.node_mut::<DnsClient>(dns_client).take_window();
                vec![
                    AppObservation {
                        sample: FleetSample {
                            host: HostSample {
                                rapl_w: sim.node_ref::<MemcachedServer>(kvs_server).power_w(now),
                                app_cpu_util: sim
                                    .node_ref::<MemcachedServer>(kvs_server)
                                    .app_utilization(),
                                hw_app_rate: sim
                                    .node_mut::<LakeDevice>(kvs_device)
                                    .measured_rate(now),
                            },
                            offered_pps: kvs_offered,
                        },
                        completed: kvs_done,
                        latency_p50_ns: kvs_lat.quantile(0.5),
                        latency_p99_ns: kvs_lat.quantile(0.99),
                        power_w: sim.instant_power(&[kvs_device, kvs_server]),
                    },
                    AppObservation {
                        sample: FleetSample {
                            host: HostSample {
                                rapl_w: Node::power_w(sim.node_ref::<DnsServer>(dns_server), now),
                                app_cpu_util: sim.node_ref::<DnsServer>(dns_server).utilization(),
                                hw_app_rate: sim
                                    .node_mut::<EmuDevice>(dns_device)
                                    .measured_rate(now),
                            },
                            offered_pps: dns_offered,
                        },
                        completed: dns_done,
                        latency_p50_ns: dns_lat.quantile(0.5),
                        latency_p99_ns: dns_lat.quantile(0.99),
                        power_w: sim.instant_power(&[dns_device, dns_server]),
                    },
                ]
            },
            |sim, t, app, p| match app {
                Self::KVS_APP => sim.node_mut::<LakeDevice>(kvs_device).apply_placement(t, p),
                _ => sim.node_mut::<EmuDevice>(dns_device).apply_placement(t, p),
            },
        )
    }
}

/// The §9.4 multi-ToR topology: two racks, each with its own programmable
/// device, shared by three tenants under a fleet controller that decides
/// *where* each program runs, not just whether it is offloaded.
///
/// * The **KVS** tenant (memcached + LaKe program) is homed on ToR A.
/// * The **Paxos** tenant (libpaxos leader + P4xos program) is also homed
///   on ToR A — so at overlapping peaks the two contend for one pipeline
///   and the loser must either stay in software or *spill* to ToR B.
/// * The **DNS** tenant (NSD + Emu program) is homed on ToR B.
///
/// Each ToR's device is realised as per-tenant partitions, exactly as
/// [`SharedDeviceRig`] modelled one card as two partitions. The KVS and
/// DNS slices are serial bump-in-the-wire chains — client → home-ToR
/// partition → (inter-ToR link) → remote-ToR partition → server — so a
/// remote placement physically pays the [`TierCost::extra_latency`]
/// detour on every request and response. (The chain also routes
/// software-mode traffic through the parked remote partition; that adds
/// the same constant to every configuration, so placements still *rank*
/// correctly and energy comparisons are unaffected.) The Paxos slice uses
/// the §9.2 virtual-leader machinery: a steerable switch in front of one
/// software leader and one P4xos FPGA leader per ToR, with the ToR-B
/// leader attached through the longer inter-ToR path.
pub struct MultiTorRig {
    /// The simulator.
    pub sim: Simulator<Packet>,
    /// KVS load generator.
    pub kvs_client: NodeId,
    /// LaKe partition on the KVS tenant's home ToR (A).
    pub kvs_dev_home: NodeId,
    /// LaKe partition on the remote ToR (B).
    pub kvs_dev_remote: NodeId,
    /// memcached host node.
    pub kvs_server: NodeId,
    /// DNS query generator.
    pub dns_client: NodeId,
    /// Emu partition on the DNS tenant's home ToR (B).
    pub dns_dev_home: NodeId,
    /// Emu partition on the remote ToR (A).
    pub dns_dev_remote: NodeId,
    /// NSD host node.
    pub dns_server: NodeId,
    /// The Paxos tenant's leader-steering switch.
    pub pax_switch: NodeId,
    /// Open-loop Paxos client.
    pub pax_client: NodeId,
    /// libpaxos software leader.
    pub pax_sw_leader: NodeId,
    /// P4xos FPGA leaders, indexed by ToR (`[A, B]`).
    pub pax_hw_leaders: [NodeId; 2],
    /// Acceptor nodes.
    pub pax_acceptors: Vec<NodeId>,
    /// Learner node.
    pub pax_learner: NodeId,
    pax_sw_port: PortId,
    pax_hw_ports: [PortId; 2],
    /// Offered-rate schedules, indexed like the fleet app vector.
    pub profiles: [RateProfile; 3],
    /// Next Paxos election round: every leader shift must elect with a
    /// strictly higher round (§9.2). A `Cell` so the run-loop closures
    /// can bump it while the simulator is mutably borrowed.
    pax_round: Cell<u16>,
}

impl MultiTorRig {
    /// Index of the KVS tenant in the fleet's app vector.
    pub const KVS_APP: usize = 0;
    /// Index of the DNS tenant in the fleet's app vector.
    pub const DNS_APP: usize = 1;
    /// Index of the Paxos tenant in the fleet's app vector.
    pub const PAX_APP: usize = 2;

    /// ToR A's device (home of the KVS and Paxos tenants).
    pub const TOR_A: DeviceId = DeviceId(0);
    /// ToR B's device (home of the DNS tenant).
    pub const TOR_B: DeviceId = DeviceId(1);

    const N_ACCEPTORS: usize = 3;

    /// Rates at which the linearised software power fits are anchored.
    const KVS_FIT_PPS: f64 = 200_000.0;
    const DNS_FIT_PPS: f64 = 150_000.0;
    const PAX_FIT_PPS: f64 = 20_000.0;

    /// Messages the software leader handles per client command: the
    /// request itself plus one 2b instance-feedback from each acceptor.
    const PAX_LEADER_MSGS_PER_CMD: f64 = 1.0 + Self::N_ACCEPTORS as f64;

    /// Client retry timeout: well under a sampling interval, so commands
    /// lost in a leader shift are retried within the same interval.
    const PAX_TIMEOUT: Nanos = Nanos::from_millis(20);

    /// The cross-ToR penalty realised by the topology: the standard
    /// intra-pod tier — the inter-ToR hop adds 2 µs each way, and a
    /// remote placement's benefit is priced at 85 % (the detour keeps
    /// the inter-ToR link and two extra switch ports busy; see
    /// [`TierCost::standard_intra_pod`] for why the haircut deliberately
    /// does not cancel against the scheduler's stickiness premium).
    pub fn penalty() -> TierCost {
        TierCost::standard_intra_pod()
    }

    /// The fabric: one Tofino-class pipeline per ToR, the two ToRs one
    /// rack pair (a single pod — both racks behind one aggregation
    /// switch). Each admits the KVS (7 stages) beside the Paxos program
    /// (6 stages) **not** — 13 of 12 stages — while DNS (6) + Paxos (6)
    /// co-fit exactly; every pair involving the KVS overflows a device,
    /// so overlapping peaks force placement decisions.
    pub fn fabric() -> DeviceFabric {
        DeviceFabric::homogeneous(
            2,
            PipelineBudget::tofino_like(),
            Topology::rack_pairs(1, Self::penalty(), TierCost::standard_inter_pod()),
        )
    }

    /// The P4xos leader program's capacity claim: stage-hungry (sequence
    /// and instance bookkeeping), tiny state.
    pub fn pax_demand() -> ProgramResources {
        ProgramResources {
            stages: 6,
            sram_bytes: 4 << 20,
            parse_depth_bytes: 64,
        }
    }

    /// The canonical three-tenant day over `period`: KVS peaks at ~0.29
    /// of the day, Paxos at ~0.42 (overlapping the KVS busy window — the
    /// ToR-A contention), DNS at ~0.63 (overlapping the Paxos tail — the
    /// ToR-B co-residence).
    pub fn contended_profiles(period: Nanos) -> [RateProfile; 3] {
        [
            RateProfile::diurnal(
                2_000.0,
                120_000.0,
                period,
                period.mul_f64(3.0 / 14.0),
                3,
                64,
            ),
            RateProfile::diurnal(
                2_000.0,
                80_000.0,
                period,
                period.mul_f64(61.0 / 70.0),
                3,
                64,
            ),
            RateProfile::diurnal(500.0, 10_000.0, period, period.mul_f64(0.08), 3, 64),
        ]
    }

    fn pax_book(own: Endpoint) -> AddressBook {
        AddressBook {
            own,
            leader: Endpoint::host(99, PAXOS_LEADER_PORT),
            acceptors: (0..Self::N_ACCEPTORS as u32)
                .map(|i| Endpoint::host(10 + i, PAXOS_ACCEPTOR_PORT))
                .collect(),
            learners: vec![Endpoint::host(30, PAXOS_LEARNER_PORT)],
        }
    }

    /// Builds the rig: all three tenants preloaded and idling in
    /// software, both FPGA leaders parked.
    pub fn new(seed: u64, keys: u64, names: u64, profiles: [RateProfile; 3]) -> Self {
        let mut sim = Simulator::new(seed);
        let inter_tor = LinkSpec::ten_gbe(Self::penalty().extra_latency);

        // KVS slice (home ToR A): client → lake@A → lake@B → memcached.
        let mut server = MemcachedServer::new(MemcachedConfig::i7_behind_lake());
        server.preload((0..keys).map(|i| {
            let k = key_name(i);
            let v = expected_value(&k, 64);
            (k, v)
        }));
        let kvs_server = sim.add_node(server);
        let kvs_dev_home = sim.add_node(LakeDevice::new(LakeCacheConfig::tiny(2_048, 65_536), 5));
        let kvs_dev_remote = sim.add_node(LakeDevice::new(LakeCacheConfig::tiny(2_048, 65_536), 5));
        let kvs_client = sim.add_node(KvsClient::open_loop(
            Endpoint::host(1, 40_000),
            Endpoint::host(2, MEMCACHED_PORT),
            profiles[Self::KVS_APP].rate_at(Nanos::ZERO),
            Box::new(UniformGen {
                keys,
                get_ratio: 0.97,
                value_len: 64,
            }),
        ));
        sim.connect_duplex(
            kvs_client,
            PortId::P0,
            kvs_dev_home,
            PortId::P0,
            LinkSpec::ten_gbe(Nanos::from_nanos(500)),
        );
        sim.connect_duplex(
            kvs_dev_home,
            HOST_DMA_PORT,
            kvs_dev_remote,
            PortId::P0,
            inter_tor,
        );
        sim.connect_duplex(
            kvs_dev_remote,
            HOST_DMA_PORT,
            kvs_server,
            PortId::P0,
            LinkSpec::ideal(),
        );

        // DNS slice (home ToR B): client → emu@B → emu@A → NSD.
        let zone = Zone::synthetic(names);
        let dns_server = sim.add_node(DnsServer::new(
            DnsServerConfig::nsd_behind_emu(),
            zone.clone(),
        ));
        let dns_dev_home = sim.add_node(EmuDevice::new(zone.clone()));
        let dns_dev_remote = sim.add_node(EmuDevice::new(zone));
        let dns_client = sim.add_node(DnsClient::new(
            Endpoint::host(3, 41_000),
            Endpoint::host(4, DNS_PORT),
            profiles[Self::DNS_APP].rate_at(Nanos::ZERO),
            names,
        ));
        sim.connect_duplex(
            dns_client,
            PortId::P0,
            dns_dev_home,
            PortId::P0,
            LinkSpec::ten_gbe(Nanos::from_nanos(500)),
        );
        sim.connect_duplex(
            dns_dev_home,
            HOST_DMA_PORT,
            dns_dev_remote,
            PortId::P0,
            inter_tor,
        );
        sim.connect_duplex(
            dns_dev_remote,
            HOST_DMA_PORT,
            dns_server,
            PortId::P0,
            LinkSpec::ideal(),
        );

        // Paxos slice (home ToR A): virtual-leader steering over one
        // software leader and one FPGA leader per ToR; the ToR-B leader
        // sits across the inter-ToR detour.
        let n_ports = 4 + 1 + Self::N_ACCEPTORS as u16;
        let pax_switch = sim.add_node(L2Switch::new(n_ports));
        let mut next_port = 0u16;
        let mut attach = |sim: &mut Simulator<Packet>, node: NodeId, extra: Nanos| -> PortId {
            let p = PortId(next_port);
            next_port += 1;
            sim.connect_duplex(
                node,
                PortId::P0,
                pax_switch,
                p,
                LinkSpec::ten_gbe(Nanos::from_micros(1) + extra),
            );
            p
        };
        let pax_sw_leader = sim.add_node(PaxosNode::new(
            RoleEngine::Leader(Leader::bootstrap(1, Self::N_ACCEPTORS)),
            Platform::host(HostConfig::libpaxos_leader()),
            Self::pax_book(Endpoint::host(20, PAXOS_LEADER_PORT)),
        ));
        let pax_sw_port = attach(&mut sim, pax_sw_leader, Nanos::ZERO);
        let hw_a = sim.add_node(PaxosNode::new(
            RoleEngine::Idle,
            Platform::fpga(),
            Self::pax_book(Endpoint::host(21, PAXOS_LEADER_PORT)),
        ));
        let hw_a_port = attach(&mut sim, hw_a, Nanos::ZERO);
        let hw_b = sim.add_node(PaxosNode::new(
            RoleEngine::Idle,
            Platform::fpga(),
            Self::pax_book(Endpoint::host(22, PAXOS_LEADER_PORT)),
        ));
        let hw_b_port = attach(&mut sim, hw_b, Self::penalty().extra_latency);
        let mut pax_acceptors = Vec::new();
        for i in 0..Self::N_ACCEPTORS as u32 {
            let ep = Endpoint::host(10 + i, PAXOS_ACCEPTOR_PORT);
            let n = sim.add_node(PaxosNode::new(
                RoleEngine::Acceptor(Acceptor::new(i as u8, AcceptorStorage::unbounded())),
                Platform::host(HostConfig::libpaxos_acceptor()),
                Self::pax_book(ep),
            ));
            attach(&mut sim, n, Nanos::ZERO);
            pax_acceptors.push(n);
        }
        let pax_learner = sim.add_node(PaxosNode::new(
            RoleEngine::Learner(Learner::new(Self::N_ACCEPTORS)),
            Platform::host(HostConfig::libpaxos_learner()),
            Self::pax_book(Endpoint::host(30, PAXOS_LEARNER_PORT)),
        ));
        attach(&mut sim, pax_learner, Nanos::ZERO);
        let pax_client = sim.add_node(PaxosClient::open_loop(
            100,
            Endpoint::host(99, PAXOS_LEADER_PORT),
            profiles[Self::PAX_APP].rate_at(Nanos::ZERO),
            Self::PAX_TIMEOUT,
        ));
        attach(&mut sim, pax_client, Nanos::ZERO);
        sim.node_mut::<L2Switch>(pax_switch)
            .steer(Match::udp_dst(PAXOS_LEADER_PORT), pax_sw_port);
        // Idle standby leaders are parked (§9.2).
        sim.node_mut::<PaxosNode>(hw_a).set_parked(true);
        sim.node_mut::<PaxosNode>(hw_b).set_parked(true);

        MultiTorRig {
            sim,
            kvs_client,
            kvs_dev_home,
            kvs_dev_remote,
            kvs_server,
            dns_client,
            dns_dev_home,
            dns_dev_remote,
            dns_server,
            pax_switch,
            pax_client,
            pax_sw_leader,
            pax_hw_leaders: [hw_a, hw_b],
            pax_acceptors,
            pax_learner,
            pax_sw_port,
            pax_hw_ports: [hw_a_port, hw_b_port],
            profiles,
            pax_round: Cell::new(2),
        }
    }

    /// The three tenants' fleet descriptors, calibrated the same way as
    /// [`SharedDeviceRig::fleet_apps`]: idle terms are the metered
    /// parked/unparked powers of the very device models the simulation
    /// runs, software dynamic terms are the host CPU models linearised at
    /// a fit anchor. The Paxos slice is metered over its three leader
    /// platforms (acceptors and learner draw the same power under every
    /// placement, so they cancel out of every comparison and are left
    /// out of both the meter and the analysis).
    pub fn fleet_apps() -> Vec<FleetApp> {
        let lake_cfg = LakeCacheConfig::tiny(8, 32);
        let lake_parked = LakeDevice::new(lake_cfg, 5).power_w(Nanos::ZERO);
        let lake_active = LakeDevice::new(lake_cfg, 5)
            .started_in_hardware()
            .power_w(Nanos::ZERO);
        let emu_parked = EmuDevice::new(Zone::synthetic(1)).power_w(Nanos::ZERO);
        let emu_active = EmuDevice::new(Zone::synthetic(1))
            .started_in_hardware()
            .power_w(Nanos::ZERO);
        let book = Self::pax_book(Endpoint::host(21, PAXOS_LEADER_PORT));
        let mut fpga = PaxosNode::new(RoleEngine::Idle, Platform::fpga(), book.clone());
        let fpga_active = Node::power_w(&fpga, Nanos::ZERO);
        fpga.set_parked(true);
        let fpga_parked = Node::power_w(&fpga, Nanos::ZERO);
        let host_leader_idle = Node::power_w(
            &PaxosNode::new(
                RoleEngine::Idle,
                Platform::host(HostConfig::libpaxos_leader()),
                book,
            ),
            Nanos::ZERO,
        );

        // Each tenant pays its home partition in both placements and its
        // remote partition always parked; only the resident partition's
        // unpark delta differs between placements, exactly as metered.
        let mc = MemcachedConfig::i7_behind_lake();
        let kvs_sw_idle = calib::I7_PLATFORM_IDLE_W + 2.0 * lake_parked;
        let kvs_dyn_at_fit = mc
            .cpu
            .dynamic_w(Self::KVS_FIT_PPS * mc.service_time.as_secs_f64());
        let kvs_hw_idle = calib::I7_PLATFORM_IDLE_W + lake_parked + lake_active;

        let nsd = DnsServerConfig::nsd_behind_emu();
        let dns_sw_idle = calib::I7_PLATFORM_IDLE_W + 2.0 * emu_parked;
        let dns_dyn_at_fit = nsd
            .cpu
            .dynamic_w(Self::DNS_FIT_PPS * nsd.service_time.as_secs_f64());
        let dns_hw_idle = calib::I7_PLATFORM_IDLE_W + emu_parked + emu_active;

        let lp = HostConfig::libpaxos_leader();
        let pax_sw_idle = host_leader_idle + 2.0 * fpga_parked;
        let pax_dyn_at_fit = lp.cpu.dynamic_w(
            Self::PAX_FIT_PPS * Self::PAX_LEADER_MSGS_PER_CMD * lp.service.as_secs_f64(),
        );
        let pax_hw_idle = host_leader_idle + fpga_parked + fpga_active;

        vec![
            FleetApp {
                name: "kvs".into(),
                demand: SharedDeviceRig::kvs_demand(),
                home: Self::TOR_A,
                weight: 1.0,
                analysis: PlacementAnalysis {
                    software: EnergyParams {
                        idle_w: kvs_sw_idle,
                        sleep_w: 0.0,
                        active_w: kvs_sw_idle + kvs_dyn_at_fit,
                        peak_rate_pps: Self::KVS_FIT_PPS,
                    },
                    network: EnergyParams {
                        idle_w: kvs_hw_idle,
                        sleep_w: 0.0,
                        active_w: kvs_hw_idle + calib::LAKE_DYNAMIC_MAX_W,
                        peak_rate_pps: calib::LAKE_LINE_RATE_PPS,
                    },
                },
            },
            FleetApp {
                name: "dns".into(),
                demand: SharedDeviceRig::dns_demand(),
                home: Self::TOR_B,
                weight: 1.0,
                analysis: PlacementAnalysis {
                    software: EnergyParams {
                        idle_w: dns_sw_idle,
                        sleep_w: 0.0,
                        active_w: dns_sw_idle + dns_dyn_at_fit,
                        peak_rate_pps: Self::DNS_FIT_PPS,
                    },
                    network: EnergyParams {
                        idle_w: dns_hw_idle,
                        sleep_w: 0.0,
                        active_w: dns_hw_idle + calib::EMU_DNS_DYNAMIC_MAX_W,
                        peak_rate_pps: calib::EMU_DNS_PEAK_RPS,
                    },
                },
            },
            FleetApp {
                name: "paxos".into(),
                demand: Self::pax_demand(),
                home: Self::TOR_A,
                weight: 1.0,
                analysis: PlacementAnalysis {
                    software: EnergyParams {
                        idle_w: pax_sw_idle,
                        sleep_w: 0.0,
                        active_w: pax_sw_idle + pax_dyn_at_fit,
                        peak_rate_pps: Self::PAX_FIT_PPS,
                    },
                    network: EnergyParams {
                        idle_w: pax_hw_idle,
                        sleep_w: 0.0,
                        active_w: pax_hw_idle + calib::P4XOS_DYNAMIC_MAX_W,
                        peak_rate_pps: calib::P4XOS_FPGA_PEAK_MPS,
                    },
                },
            },
        ]
    }

    /// A fleet controller over the two-ToR fabric with the standard
    /// hysteresis settings.
    pub fn fleet_controller(interval: Nanos) -> FleetController {
        FleetController::new(
            FleetControllerConfig::standard(interval),
            Self::fabric(),
            Self::fleet_apps(),
        )
    }

    /// A controller pinned to a fixed placement vector (the static
    /// baselines): an infinite sustain window means no condition ever
    /// completes.
    pub fn pinned_controller(interval: Nanos, placements: [Placement; 3]) -> FleetController {
        let config = FleetControllerConfig {
            sustain_samples: u32::MAX,
            ..FleetControllerConfig::standard(interval)
        };
        FleetController::new(config, Self::fabric(), Self::fleet_apps())
            .with_initial_placements(&placements)
    }

    /// Runs the experiment until `until` under `controller`, driving all
    /// three tenants' diurnal schedules and recording per-app timelines
    /// plus total metered energy.
    pub fn run(&mut self, controller: &mut FleetController, until: Nanos) -> FleetTimeline {
        self.run_with(controller, until, RowLog::Full)
    }

    /// [`MultiTorRig::run`] with an explicit timeline row-retention mode
    /// (the streaming-equivalence tests drive both).
    pub fn run_with(
        &mut self,
        controller: &mut FleetController,
        until: Nanos,
        mode: RowLog,
    ) -> FleetTimeline {
        let ids = ApplyIds {
            kvs_client: self.kvs_client,
            kvs_dev_home: self.kvs_dev_home,
            kvs_dev_remote: self.kvs_dev_remote,
            kvs_server: self.kvs_server,
            dns_client: self.dns_client,
            dns_dev_home: self.dns_dev_home,
            dns_dev_remote: self.dns_dev_remote,
            dns_server: self.dns_server,
            pax_client: self.pax_client,
            pax_switch: self.pax_switch,
            pax_sw_leader: self.pax_sw_leader,
            pax_hw_leaders: self.pax_hw_leaders,
            pax_sw_port: self.pax_sw_port,
            pax_hw_ports: self.pax_hw_ports,
            pax_round: &self.pax_round,
        };
        // Execute any pre-seeded placements on the simulated hardware.
        let now = self.sim.now();
        let seeded: Vec<Placement> = controller.placements().to_vec();
        for (app, &p) in seeded.iter().enumerate() {
            if p.is_offloaded() {
                apply_multi_tor_placement(&mut self.sim, &ids, now, app, p);
            }
        }
        let interval = controller.config().interval;
        let profiles = self.profiles.clone();
        run_fleet_controlled_with(
            &mut self.sim,
            controller,
            until,
            mode,
            |sim| {
                let now = sim.now();
                // Follow the offered-rate schedules.
                sim.node_mut::<KvsClient>(ids.kvs_client)
                    .set_rate(profiles[Self::KVS_APP].rate_at(now));
                sim.node_mut::<DnsClient>(ids.dns_client)
                    .set_rate(profiles[Self::DNS_APP].rate_at(now));
                sim.node_mut::<PaxosClient>(ids.pax_client)
                    .set_rate(profiles[Self::PAX_APP].rate_at(now));
                // Host-measured offered rates, sampled mid-interval (see
                // SharedDeviceRig::run: completions would understate the
                // offered load exactly when the software side saturates).
                let mid = now - interval.mul_f64(0.5);
                let kvs_offered = profiles[Self::KVS_APP].rate_at(mid);
                let dns_offered = profiles[Self::DNS_APP].rate_at(mid);
                let pax_offered = profiles[Self::PAX_APP].rate_at(mid);
                let (kvs_done, kvs_lat) = sim.node_mut::<KvsClient>(ids.kvs_client).take_window();
                let (dns_done, dns_lat) = sim.node_mut::<DnsClient>(ids.dns_client).take_window();
                let (pax_done, pax_lat) = sim.node_mut::<PaxosClient>(ids.pax_client).take_window();
                // Network-measured rates (§9.1 feedback): the served
                // rate over the elapsed interval. Every completion
                // passed through the tenant's device partitions, and the
                // per-interval count reacts within one sample — the
                // devices' own sliding-window estimators average over a
                // full second, which is fine for the in-dataplane
                // threshold controller but would make the fleet compare
                // a stale incumbent against fresh challengers.
                let dt = interval.as_secs_f64();
                let kvs_hw_rate = kvs_done as f64 / dt;
                let dns_hw_rate = dns_done as f64 / dt;
                let pax_hw_rate = pax_done as f64 / dt;
                vec![
                    AppObservation {
                        sample: FleetSample {
                            host: HostSample {
                                rapl_w: sim
                                    .node_ref::<MemcachedServer>(ids.kvs_server)
                                    .power_w(now),
                                app_cpu_util: sim
                                    .node_ref::<MemcachedServer>(ids.kvs_server)
                                    .app_utilization(),
                                hw_app_rate: kvs_hw_rate,
                            },
                            offered_pps: kvs_offered,
                        },
                        completed: kvs_done,
                        latency_p50_ns: kvs_lat.quantile(0.5),
                        latency_p99_ns: kvs_lat.quantile(0.99),
                        power_w: sim.instant_power(&[
                            ids.kvs_dev_home,
                            ids.kvs_dev_remote,
                            ids.kvs_server,
                        ]),
                    },
                    AppObservation {
                        sample: FleetSample {
                            host: HostSample {
                                rapl_w: Node::power_w(
                                    sim.node_ref::<DnsServer>(ids.dns_server),
                                    now,
                                ),
                                app_cpu_util: sim
                                    .node_ref::<DnsServer>(ids.dns_server)
                                    .utilization(),
                                hw_app_rate: dns_hw_rate,
                            },
                            offered_pps: dns_offered,
                        },
                        completed: dns_done,
                        latency_p50_ns: dns_lat.quantile(0.5),
                        latency_p99_ns: dns_lat.quantile(0.99),
                        power_w: sim.instant_power(&[
                            ids.dns_dev_home,
                            ids.dns_dev_remote,
                            ids.dns_server,
                        ]),
                    },
                    AppObservation {
                        sample: FleetSample {
                            host: HostSample {
                                rapl_w: Node::power_w(
                                    sim.node_ref::<PaxosNode>(ids.pax_sw_leader),
                                    now,
                                ),
                                app_cpu_util: 0.0,
                                hw_app_rate: pax_hw_rate,
                            },
                            offered_pps: pax_offered,
                        },
                        completed: pax_done,
                        latency_p50_ns: pax_lat.quantile(0.5),
                        latency_p99_ns: pax_lat.quantile(0.99),
                        power_w: sim.instant_power(&[
                            ids.pax_sw_leader,
                            ids.pax_hw_leaders[0],
                            ids.pax_hw_leaders[1],
                        ]),
                    },
                ]
            },
            |sim, t, app, p| apply_multi_tor_placement(sim, &ids, t, app, p),
        )
    }

    /// Total commands acknowledged by the Paxos client.
    pub fn pax_acked(&self) -> u64 {
        self.sim
            .node_ref::<PaxosClient>(self.pax_client)
            .stats()
            .acked
    }
}

/// The node handles the placement executor needs, copied out of the rig
/// (plus a shared reference to the election-round counter) so the harness
/// closures can borrow the simulator mutably alongside it.
#[derive(Clone, Copy)]
struct ApplyIds<'a> {
    kvs_client: NodeId,
    kvs_dev_home: NodeId,
    kvs_dev_remote: NodeId,
    kvs_server: NodeId,
    dns_client: NodeId,
    dns_dev_home: NodeId,
    dns_dev_remote: NodeId,
    dns_server: NodeId,
    pax_client: NodeId,
    pax_switch: NodeId,
    pax_sw_leader: NodeId,
    pax_hw_leaders: [NodeId; 2],
    pax_sw_port: PortId,
    pax_hw_ports: [PortId; 2],
    pax_round: &'a Cell<u16>,
}

/// Executes one placement decision on the simulated hardware: partition
/// parking for the bump-in-the-wire tenants, virtual-leader re-steering
/// for Paxos.
fn apply_multi_tor_placement(
    sim: &mut Simulator<Packet>,
    ids: &ApplyIds<'_>,
    t: Nanos,
    app: usize,
    p: Placement,
) {
    let on = |d: DeviceId| {
        if p == Placement::Device(d) {
            Placement::HARDWARE
        } else {
            Placement::Software
        }
    };
    match app {
        MultiTorRig::KVS_APP => {
            sim.node_mut::<LakeDevice>(ids.kvs_dev_home)
                .apply_placement(t, on(MultiTorRig::TOR_A));
            sim.node_mut::<LakeDevice>(ids.kvs_dev_remote)
                .apply_placement(t, on(MultiTorRig::TOR_B));
        }
        MultiTorRig::DNS_APP => {
            sim.node_mut::<EmuDevice>(ids.dns_dev_home)
                .apply_placement(t, on(MultiTorRig::TOR_B));
            sim.node_mut::<EmuDevice>(ids.dns_dev_remote)
                .apply_placement(t, on(MultiTorRig::TOR_A));
        }
        MultiTorRig::PAX_APP => {
            let (to_node, to_port) = match p {
                Placement::Software => (ids.pax_sw_leader, ids.pax_sw_port),
                Placement::Device(d) => {
                    (ids.pax_hw_leaders[d.index()], ids.pax_hw_ports[d.index()])
                }
            };
            // Quiesce every other leader; park idle FPGAs (§9.2).
            for (&n, &port) in std::iter::once(&ids.pax_sw_leader)
                .chain(ids.pax_hw_leaders.iter())
                .zip(std::iter::once(&ids.pax_sw_port).chain(ids.pax_hw_ports.iter()))
            {
                if n != to_node {
                    let node = sim.node_mut::<PaxosNode>(n);
                    node.deactivate();
                    node.set_parked(true);
                    sim.node_mut::<L2Switch>(ids.pax_switch).unsteer_port(port);
                }
            }
            sim.node_mut::<PaxosNode>(to_node).set_parked(false);
            sim.node_mut::<L2Switch>(ids.pax_switch)
                .steer(Match::udp_dst(PAXOS_LEADER_PORT), to_port);
            let round = ids.pax_round.get();
            ids.pax_round.set(round + 1);
            sim.with_node_ctx::<PaxosNode, _>(to_node, |n, ctx| n.activate_leader(ctx, round));
        }
        other => panic!("unknown app index {other}"),
    }
}

/// The fairness topology: two ToRs, four tenants, *sustained* (not
/// offset) contention — the scenario the weighted-DRF arbitration layer
/// exists for.
///
/// * **KVS** (LaKe-class, 7 stages / 40 MB — dominant share 0.83) and
///   **Paxos** (P4xos-class, 6 stages — dominant share 0.50) are both
///   homed on ToR A, whose device can host only one of them.
/// * **DNS** (a beefier Emu variant: deeper name tables burn a seventh
///   stage, 7 stages / 24 MB) is homed on ToR B and big enough that the
///   Paxos program cannot co-reside with it there either (7 + 6 > 12) —
///   so while the KVS and DNS peaks hold, the Paxos tenant fits
///   *nowhere* and a pure benefit-maximising knapsack starves it
///   indefinitely.
/// * A second KVS tenant (**bulk**: a scan-heavy analytics cache whose
///   program wants 14 stages / 60 MB) is sized to be *unsatisfiable*:
///   its demand exceeds every device even empty, so admission control
///   must reject it up front rather than let it thrash.
///
/// Unlike [`SharedDeviceRig`] and [`MultiTorRig`] — which exercise the
/// packet-level device models — this rig is **model-driven**: the
/// tenants' §8 analyses are stylised curves with the same relative
/// economics as the calibrated tenants (KVS out-scores everyone, Paxos
/// clears the floor but never wins a score fight), driven through
/// [`run_fleet_controlled_with`] against closed-form observations. The
/// fairness dance (queue → claim → clip → tenure → counter-claim) needs
/// precisely shaped, *sustained* contention; the packet plumbing it
/// would ride on is already end-to-end tested by the other rigs.
pub struct ContendedFabricRig {
    /// Offered-rate schedules, indexed like the fleet app vector.
    pub profiles: [RateProfile; 4],
}

impl ContendedFabricRig {
    /// Index of the KVS tenant in the fleet's app vector.
    pub const KVS_APP: usize = 0;
    /// Index of the DNS tenant in the fleet's app vector.
    pub const DNS_APP: usize = 1;
    /// Index of the Paxos tenant in the fleet's app vector.
    pub const PAX_APP: usize = 2;
    /// Index of the unsatisfiable bulk-analytics tenant.
    pub const BULK_APP: usize = 3;

    /// ToR A's device (home of the KVS, Paxos and bulk tenants).
    pub const TOR_A: DeviceId = DeviceId(0);
    /// ToR B's device (home of the DNS tenant).
    pub const TOR_B: DeviceId = DeviceId(1);

    /// Plateau rates, packets/second, indexed like the app vector.
    const PEAK_PPS: [f64; 4] = [120_000.0, 90_000.0, 12_000.0, 100_000.0];
    /// Software-mode latency of every tenant (model-level constant).
    const SW_LATENCY_NS: u64 = 12_000;
    /// Hardware-mode latency at the home ToR.
    const HW_LATENCY_NS: u64 = 1_500;

    /// The starvation window of the standard fairness configuration,
    /// in samples: long enough that hand-overs are deliberate, short
    /// enough that several play out within a run.
    pub const STARVATION_WINDOW: u32 = 8;

    /// The fabric: one Tofino-class pipeline per ToR with the standard
    /// intra-pod cross-ToR penalty (the two racks form one pod).
    pub fn fabric() -> DeviceFabric {
        DeviceFabric::homogeneous(
            2,
            PipelineBudget::tofino_like(),
            Topology::rack_pairs(
                1,
                TierCost::standard_intra_pod(),
                TierCost::standard_inter_pod(),
            ),
        )
    }

    /// The beefed-up Emu program of this rig's DNS tenant: one stage
    /// more than [`SharedDeviceRig::dns_demand`], so ToR B cannot host
    /// it beside the Paxos program.
    pub fn dns_demand() -> ProgramResources {
        ProgramResources {
            stages: 7,
            sram_bytes: 24 << 20,
            parse_depth_bytes: 128,
        }
    }

    /// The unsatisfiable bulk tenant's demand: over every device's stage
    /// *and* SRAM budget, so `cost_units > 1` on each.
    pub fn bulk_demand() -> ProgramResources {
        ProgramResources {
            stages: 14,
            sram_bytes: 60 << 20,
            parse_depth_bytes: 96,
        }
    }

    /// A stylised §8 analysis: a software curve with dynamic slope
    /// `slope_w_per_kpps` against a flat hardware curve `unpark_w` above
    /// the shared idle floor — `benefit(r) ≈ slope · r − unpark`.
    fn analysis(slope_w_per_kpps: f64, unpark_w: f64) -> PlacementAnalysis {
        PlacementAnalysis {
            software: EnergyParams {
                idle_w: 50.0,
                sleep_w: 0.0,
                active_w: 50.0 + slope_w_per_kpps * 1_000.0,
                peak_rate_pps: 1_000_000.0,
            },
            network: EnergyParams {
                idle_w: 50.0 + unpark_w,
                sleep_w: 0.0,
                active_w: 50.0 + unpark_w + 0.1,
                peak_rate_pps: 10_000_000.0,
            },
        }
    }

    /// The four tenants. Plateau economics: KVS 10 W benefit (score
    /// 12.0), DNS 6.1 W (score 10.5, sticky 13.1), Paxos 2.2 W (score
    /// 4.4 — clears the 1 W floor even with the 0.85 remote haircut but
    /// never wins a score fight), bulk 10 W (hot, but rejected). Equal
    /// weights: each admitted tenant is entitled to 1/3 while all three
    /// contend, which both big programs' dominant shares exceed — so
    /// claims can clip in either direction and ToR A time-shares.
    pub fn fleet_apps() -> Vec<FleetApp> {
        vec![
            FleetApp {
                name: "kvs".into(),
                demand: SharedDeviceRig::kvs_demand(),
                analysis: Self::analysis(0.10, 2.0),
                home: Self::TOR_A,
                weight: 1.0,
            },
            FleetApp {
                name: "dns".into(),
                demand: Self::dns_demand(),
                analysis: Self::analysis(0.09, 2.0),
                home: Self::TOR_B,
                weight: 1.0,
            },
            FleetApp {
                name: "paxos".into(),
                demand: MultiTorRig::pax_demand(),
                analysis: Self::analysis(0.35, 2.0),
                home: Self::TOR_A,
                weight: 1.0,
            },
            FleetApp {
                name: "kvs-bulk".into(),
                demand: Self::bulk_demand(),
                analysis: Self::analysis(0.12, 2.0),
                home: Self::TOR_A,
                weight: 1.0,
            },
        ]
    }

    /// The canonical contended day: everyone idles briefly, then all
    /// four tenants hold their plateaus *simultaneously* until 0.8 s
    /// before `horizon`, then idle again. Sustained overlap — not the
    /// offset peaks of the other rigs — is what makes fairness, not
    /// benefit, the binding constraint.
    pub fn contended_profiles(horizon: Nanos) -> [RateProfile; 4] {
        let start = Nanos::from_millis(200);
        let stop = horizon - Nanos::from_millis(800);
        Self::PEAK_PPS.map(|peak| {
            RateProfile::steps(vec![(Nanos::ZERO, 1_000.0), (start, peak), (stop, 1_000.0)])
        })
    }

    /// Builds the rig over the given schedules.
    pub fn new(profiles: [RateProfile; 4]) -> Self {
        ContendedFabricRig { profiles }
    }

    /// The standard fairness configuration: ordinary hysteresis plus the
    /// rig's 8-sample starvation window.
    pub fn config(interval: Nanos) -> FleetControllerConfig {
        FleetControllerConfig {
            starvation_window: Self::STARVATION_WINDOW,
            ..FleetControllerConfig::standard(interval)
        }
    }

    /// A weighted-DRF fleet controller over the rig's fabric.
    pub fn fleet_controller(interval: Nanos) -> FleetController {
        FleetController::new(Self::config(interval), Self::fabric(), Self::fleet_apps())
    }

    /// The pure benefit-maximising scheduler (fairness disabled): the
    /// baseline that starves the Paxos tenant.
    pub fn pure_benefit_controller(interval: Nanos) -> FleetController {
        let config = FleetControllerConfig {
            starvation_window: u32::MAX,
            ..Self::config(interval)
        };
        FleetController::new(config, Self::fabric(), Self::fleet_apps())
    }

    /// A controller pinned to a fixed placement vector (static
    /// baselines): an infinite sustain window means no condition ever
    /// completes.
    pub fn pinned_controller(interval: Nanos, placements: [Placement; 4]) -> FleetController {
        let config = FleetControllerConfig {
            sustain_samples: u32::MAX,
            ..Self::config(interval)
        };
        FleetController::new(config, Self::fabric(), Self::fleet_apps())
            .with_initial_placements(&placements)
    }

    /// Runs the model until `until`: the §8 curves supply rates, power
    /// and latency per placement, `run_fleet_controlled` supplies the
    /// control loop, streak machinery and bookkeeping. Metered power for
    /// a remote placement gives back the share of the saving that the
    /// detour burns, exactly as the scheduler prices it (this rig's
    /// topology carries no link energy, so only the haircut meters).
    pub fn run(&self, controller: &mut FleetController, until: Nanos) -> FleetTimeline {
        self.run_with(controller, until, RowLog::Full)
    }

    /// [`ContendedFabricRig::run`] with an explicit timeline
    /// row-retention mode (the streaming-equivalence tests drive both).
    pub fn run_with(
        &self,
        controller: &mut FleetController,
        until: Nanos,
        mode: RowLog,
    ) -> FleetTimeline {
        run_stylised_model(
            controller,
            until,
            mode,
            &Self::fabric(),
            &self.profiles,
            Self::SW_LATENCY_NS,
            Self::HW_LATENCY_NS,
        )
    }
}

/// Drives a **model-driven** rig (stylised §8 curves, no packet
/// machinery) through [`run_fleet_controlled_with`]: the curves supply the
/// rates (sampled mid-interval), power and latency per placement, and a
/// remote placement's metered power gives back the topology tier's share
/// of the saving *plus* the link energy its detour burns — exactly as
/// the scheduler prices it. Shared by [`ContendedFabricRig`] and
/// [`PodFabricRig`].
fn run_stylised_model(
    controller: &mut FleetController,
    until: Nanos,
    mode: RowLog,
    fabric: &DeviceFabric,
    profiles: &[RateProfile],
    sw_latency_ns: u64,
    hw_latency_ns: u64,
) -> FleetTimeline {
    let mut sim: Simulator<()> = Simulator::new(0);
    let apps = controller.apps().to_vec();
    let interval = controller.config().interval;
    let placements = std::cell::RefCell::new(controller.placements().to_vec());
    run_fleet_controlled_with(
        &mut sim,
        controller,
        until,
        mode,
        |sim| {
            let now = sim.now();
            let mid = now - interval.mul_f64(0.5);
            (0..apps.len())
                .map(|i| {
                    let rate = profiles[i].rate_at(mid);
                    let placement = placements.borrow()[i];
                    let (sw_w, hw_w) = apps[i].analysis.energy_per_second(rate);
                    let (power_w, latency) = match placement {
                        Placement::Software => (sw_w, sw_latency_ns),
                        Placement::Device(d) => {
                            let f = fabric.benefit_factor(apps[i].home, d);
                            let link_w = fabric.link_energy_w(apps[i].home, d, rate);
                            let detour = 2 * fabric.extra_latency(apps[i].home, d).as_nanos();
                            (sw_w - f * (sw_w - hw_w) + link_w, hw_latency_ns + detour)
                        }
                    };
                    AppObservation {
                        sample: FleetSample {
                            host: HostSample {
                                rapl_w: sw_w,
                                app_cpu_util: rate / 1e6,
                                hw_app_rate: if placement.is_offloaded() { rate } else { 0.0 },
                            },
                            offered_pps: rate,
                        },
                        completed: (rate * interval.as_secs_f64()) as u64,
                        latency_p50_ns: latency,
                        latency_p99_ns: latency * 2,
                        power_w,
                    }
                })
                .collect()
        },
        |_sim, _t, app, p| placements.borrow_mut()[app] = p,
    )
}

/// The three-tier topology rig: **2 pods × 2 ToRs** behind a core, five
/// tenants, heterogeneous budgets — the scenario the [`Topology`]
/// distance matrix, the migration debit and the min-cost fairness
/// hand-over exist for.
///
/// Layout (device index = ToR):
///
/// ```text
///                 core
///               /      \
///          pod 0        pod 1
///         /     \      /     \
///      ToR 0   ToR 1  ToR 2  ToR 3
///      12 st   10 st  12 st  10 st
///      48 MB   32 MB  48 MB  32 MB
/// ```
///
/// * **KVS** (7 st / 40 MB, home ToR 0): the anchor tenant — only the big
///   ToRs can host it, and it out-scores everyone.
/// * **Analytics** (6 st / 20 MB, home ToR 0): contends with the KVS at
///   home and must spill. ToR 1 (near, one pod hop) and ToR 3 (far,
///   across the core) have the *same* budget, so only the distance
///   matrix separates them: the spill must land near.
/// * **DNS** (7 st / 24 MB, home ToR 2): holds its own ToR in pod 1.
/// * **Edge** (6 st / 16 MB, home ToR 3): a small tenant with the
///   weakest economics of the residents — the cheapest program to clip.
/// * **Paxos** (6 st / 4 MB, home ToR 0): profitable everywhere (even
///   across the core), out-scored everywhere — with all four devices
///   full it fits *nowhere* and must go through the fairness claim. Its
///   best-*score* device is its home ToR 0, where the expensive KVS
///   sits; the min-*cost* hand-over instead clips the edge tenant on
///   far-away ToR 3, forfeiting 2.5 W instead of 10 W.
///
/// Like [`ContendedFabricRig`] this rig is **model-driven**: stylised §8
/// curves with precisely shaped sustained plateaus, driven through
/// [`run_fleet_controlled_with`]; the packet plumbing such schedules ride on
/// is end-to-end tested by [`MultiTorRig`]. Metered power for a remote
/// placement gives back the tier's share of the saving *plus* the link
/// energy its detour burns, exactly as the scheduler prices it.
pub struct PodFabricRig {
    /// Offered-rate schedules, indexed like the fleet app vector.
    pub profiles: [RateProfile; 5],
}

impl PodFabricRig {
    /// Index of the KVS tenant in the fleet's app vector.
    pub const KVS_APP: usize = 0;
    /// Index of the analytics tenant (the near-spiller).
    pub const ANA_APP: usize = 1;
    /// Index of the DNS tenant.
    pub const DNS_APP: usize = 2;
    /// Index of the edge tenant (the cheapest clip).
    pub const EDGE_APP: usize = 3;
    /// Index of the Paxos tenant (the fairness claimant).
    pub const PAX_APP: usize = 4;

    /// Big ToR of pod 0 (home of KVS, analytics and Paxos).
    pub const TOR_A0: DeviceId = DeviceId(0);
    /// Small ToR of pod 0 (the near spill target).
    pub const TOR_A1: DeviceId = DeviceId(1);
    /// Big ToR of pod 1 (home of DNS).
    pub const TOR_B0: DeviceId = DeviceId(2);
    /// Small ToR of pod 1 (home of the edge tenant).
    pub const TOR_B1: DeviceId = DeviceId(3);

    /// Plateau rates, packets/second, indexed like the app vector.
    const PEAK_PPS: [f64; 5] = [120_000.0, 90_000.0, 90_000.0, 60_000.0, 12_000.0];
    /// Software-mode latency of every tenant (model-level constant).
    const SW_LATENCY_NS: u64 = 12_000;
    /// Hardware-mode latency at the home ToR.
    const HW_LATENCY_NS: u64 = 1_500;

    /// The starvation window of the rig's fairness configuration.
    pub const STARVATION_WINDOW: u32 = 8;

    /// The intra-pod tier: the standard 2 µs / 0.85 detour plus the
    /// metered aggregation-switch port energy, calibrated from the
    /// §9.4 switch figures (exactly 500 nJ per packet per direction —
    /// the value this rig used to quote by hand).
    pub fn intra_pod() -> TierCost {
        TierCost::calibrated_intra_pod(&LinkEnergyModel::arista_class())
    }

    /// The inter-pod tier: the standard 6 µs / 0.70 core detour plus
    /// three calibrated switch traversals (exactly 1500 nJ per packet
    /// per direction).
    pub fn inter_pod() -> TierCost {
        TierCost::calibrated_inter_pod(&LinkEnergyModel::arista_class())
    }

    /// The small-ToR budget: 10 stages / 32 MB (an older-generation
    /// pipeline kept in service — heterogeneity is the norm at fleet
    /// scale).
    pub fn small_budget() -> PipelineBudget {
        PipelineBudget {
            stages: 10,
            sram_bytes: 32 << 20,
            parse_depth_bytes: 192,
        }
    }

    /// The fabric: big/small ToR pairs in each pod, under the
    /// three-tier distance matrix.
    pub fn fabric() -> DeviceFabric {
        let big = PipelineBudget::tofino_like();
        DeviceFabric::new(
            vec![big, Self::small_budget(), big, Self::small_budget()],
            Topology::fat_tree(2, 2, Self::intra_pod(), Self::inter_pod()),
        )
    }

    /// A stylised §8 analysis (see [`ContendedFabricRig`]):
    /// `benefit(r) ≈ slope · r − unpark`.
    fn analysis(slope_w_per_kpps: f64, unpark_w: f64) -> PlacementAnalysis {
        PlacementAnalysis {
            software: EnergyParams {
                idle_w: 50.0,
                sleep_w: 0.0,
                active_w: 50.0 + slope_w_per_kpps * 1_000.0,
                peak_rate_pps: 1_000_000.0,
            },
            network: EnergyParams {
                idle_w: 50.0 + unpark_w,
                sleep_w: 0.0,
                active_w: 50.0 + unpark_w + 0.1,
                peak_rate_pps: 10_000_000.0,
            },
        }
    }

    /// The five tenants. Plateau benefits: KVS 10 W (score 12.0 at
    /// home), analytics 5.2 W, DNS 6.1 W, edge 2.5 W (the cheapest
    /// resident), Paxos 2.2 W (clears the 1 W floor even across the
    /// core, never wins a score fight).
    pub fn fleet_apps() -> Vec<FleetApp> {
        vec![
            FleetApp {
                name: "kvs".into(),
                demand: SharedDeviceRig::kvs_demand(),
                analysis: Self::analysis(0.10, 2.0),
                home: Self::TOR_A0,
                weight: 1.0,
            },
            FleetApp {
                name: "analytics".into(),
                demand: ProgramResources {
                    stages: 6,
                    sram_bytes: 20 << 20,
                    parse_depth_bytes: 96,
                },
                analysis: Self::analysis(0.08, 2.0),
                home: Self::TOR_A0,
                weight: 1.0,
            },
            FleetApp {
                name: "dns".into(),
                demand: ContendedFabricRig::dns_demand(),
                analysis: Self::analysis(0.09, 2.0),
                home: Self::TOR_B0,
                weight: 1.0,
            },
            FleetApp {
                name: "edge".into(),
                demand: ProgramResources {
                    stages: 6,
                    sram_bytes: 16 << 20,
                    parse_depth_bytes: 96,
                },
                analysis: Self::analysis(0.075, 2.0),
                home: Self::TOR_B1,
                weight: 1.0,
            },
            FleetApp {
                name: "paxos".into(),
                demand: MultiTorRig::pax_demand(),
                analysis: Self::analysis(0.35, 2.0),
                home: Self::TOR_A0,
                weight: 1.0,
            },
        ]
    }

    /// The canonical contended day over `horizon`: a short idle valley,
    /// then every tenant holds its plateau simultaneously until 3 s
    /// before the horizon, then idles again. The valleys are where the
    /// on-demand fleet beats every static placement (four parked devices
    /// save ~8 W of unpark power that statics keep paying); the
    /// sustained overlap is where the distance matrix and the fairness
    /// layer earn their keep.
    pub fn contended_profiles(horizon: Nanos) -> [RateProfile; 5] {
        let start = Nanos::from_millis(300);
        // Short bench horizons keep the valley proportional instead of
        // underflowing the subtraction.
        let tail = Nanos::from_millis(3_000).min(horizon.mul_f64(0.3));
        let stop = horizon - tail;
        Self::PEAK_PPS.map(|peak| {
            RateProfile::steps(vec![(Nanos::ZERO, 1_000.0), (start, peak), (stop, 1_000.0)])
        })
    }

    /// Builds the rig over the given schedules.
    pub fn new(profiles: [RateProfile; 5]) -> Self {
        PodFabricRig { profiles }
    }

    /// The rig's standard configuration: ordinary hysteresis, the
    /// 8-sample starvation window, the standard 5 J switchover debit,
    /// min-cost hand-overs.
    pub fn config(interval: Nanos) -> FleetControllerConfig {
        FleetControllerConfig {
            starvation_window: Self::STARVATION_WINDOW,
            ..FleetControllerConfig::standard(interval)
        }
    }

    /// A fleet controller over the rig's fabric with the given claim
    /// policy (min-cost is the standard; best-score is the baseline the
    /// acceptance comparison runs against).
    pub fn fleet_controller(interval: Nanos, claim_policy: ClaimPolicy) -> FleetController {
        let config = FleetControllerConfig {
            claim_policy,
            ..Self::config(interval)
        };
        FleetController::new(config, Self::fabric(), Self::fleet_apps())
    }

    /// A controller pinned to a fixed placement vector (static
    /// baselines): an infinite sustain window means no condition ever
    /// completes.
    pub fn pinned_controller(interval: Nanos, placements: [Placement; 5]) -> FleetController {
        let config = FleetControllerConfig {
            sustain_samples: u32::MAX,
            ..Self::config(interval)
        };
        FleetController::new(config, Self::fabric(), Self::fleet_apps())
            .with_initial_placements(&placements)
    }

    /// The natural static deployment a fleet operator would pick by
    /// looking at the plateau: every resident on its home ToR (analytics
    /// on the near small ToR), Paxos left in software. The strongest
    /// static baseline the on-demand schedule must beat.
    pub fn natural_static() -> [Placement; 5] {
        [
            Placement::Device(Self::TOR_A0),
            Placement::Device(Self::TOR_A1),
            Placement::Device(Self::TOR_B0),
            Placement::Device(Self::TOR_B1),
            Placement::Software,
        ]
    }

    /// Runs the model until `until` (the shared stylised-model loop):
    /// the §8 curves supply rates, power and latency per placement;
    /// metered power for a remote placement gives back the tier's share
    /// of the saving plus the detour's link energy, exactly as the
    /// scheduler prices it.
    pub fn run(&self, controller: &mut FleetController, until: Nanos) -> FleetTimeline {
        self.run_with(controller, until, RowLog::Full)
    }

    /// [`PodFabricRig::run`] with an explicit timeline row-retention
    /// mode (the streaming-equivalence tests drive both).
    pub fn run_with(
        &self,
        controller: &mut FleetController,
        until: Nanos,
        mode: RowLog,
    ) -> FleetTimeline {
        run_stylised_model(
            controller,
            until,
            mode,
            &Self::fabric(),
            &self.profiles,
            Self::SW_LATENCY_NS,
            Self::HW_LATENCY_NS,
        )
    }
}

/// The fleet-scale arbitration rig: `Topology::fat_tree(8, 16)` — 128
/// ToR devices in 8 pods — carrying 1000+ tenants whose offered rates
/// follow a zipf popularity curve, driven straight into the
/// [`HierarchicalController`] (no packet simulation: the §8 curves
/// price everything, exactly as the scheduler sees it).
///
/// The trace is built so that most sampling intervals are *economically
/// quiet* — every tenant's rate wobbles within the controller's dead
/// band — while a small rotating churn set (one tenant every
/// [`MegaFabricRig::CHURN_PERIOD`] ticks) collapses and recovers,
/// dirtying only its own pod. That is the regime the incremental
/// pipeline is built for, and the regime a real fleet lives in:
/// datacenter-wide load does not change every 150 ms, one rack's does.
pub struct MegaFabricRig {
    apps: Vec<FleetApp>,
    /// Steady offered rate per tenant, packets/second (rank-mapped from
    /// the zipf popularity curve).
    base: Vec<f64>,
    /// Scratch sample vector reused every tick.
    samples: Vec<FleetSample>,
}

impl MegaFabricRig {
    /// Pods in the fat-tree.
    pub const PODS: usize = 8;
    /// ToR devices per pod.
    pub const TORS_PER_POD: usize = 16;
    /// Total devices.
    pub const DEVICES: usize = Self::PODS * Self::TORS_PER_POD;
    /// Zipf exponent of the tenant popularity curve: shallow enough
    /// that roughly the hottest hundred of a thousand tenants clear the
    /// 1 W offload floor (the fleet regime: most tenants are cold).
    pub const ALPHA: f64 = 0.6;
    /// Offered rate of the rank-1 tenant, packets/second.
    pub const PEAK_PPS: f64 = 500_000.0;
    /// Ticks between churn events (one tenant collapsing or
    /// recovering).
    pub const CHURN_PERIOD: u64 = 4;

    /// The 128-device fat-tree fabric under the calibrated tier costs
    /// (standard latency/haircut terms, link energy metered from the
    /// §9.4 switch model).
    pub fn fabric() -> DeviceFabric {
        let link = LinkEnergyModel::arista_class();
        DeviceFabric::homogeneous(
            Self::DEVICES,
            PipelineBudget::tofino_like(),
            Topology::fat_tree(
                Self::PODS,
                Self::TORS_PER_POD,
                TierCost::calibrated_intra_pod(&link),
                TierCost::calibrated_inter_pod(&link),
            ),
        )
    }

    /// Builds `tenants` zipf-ranked tenants, deterministically from
    /// `seed`: homes round-robin across the 128 ToRs, demand classes and
    /// benefit slopes drawn from the seeded generator, offered rates
    /// mapped from a shuffled popularity ranking
    /// (`PEAK_PPS × rank^(-α)`).
    pub fn new(tenants: usize, seed: u64) -> Self {
        let mut rng = Rng::new(seed);
        let zipf = Zipf::new(tenants as u64, Self::ALPHA).expect("valid zipf parameters");
        // Rank assignment: which tenant is the fleet's hottest is
        // arbitrary, so shuffle ranks over tenant indices.
        let mut ranks: Vec<u64> = (1..=tenants as u64).collect();
        rng.shuffle(&mut ranks);
        let mut apps = Vec::with_capacity(tenants);
        let mut base = Vec::with_capacity(tenants);
        for (i, &rank) in ranks.iter().enumerate() {
            let stages = 2 + rng.index(3) as u32; // 2..=4: 3-6 tenants per ToR
            let sram_mb = 1 + rng.index(4) as u64; // 1..=4 MB
            let slope = 0.08 + 0.04 * rng.f64(); // W per kpps
            apps.push(FleetApp {
                name: format!("tenant{i}"),
                demand: ProgramResources {
                    stages,
                    sram_bytes: sram_mb << 20,
                    parse_depth_bytes: 64,
                },
                analysis: PlacementAnalysis {
                    software: EnergyParams {
                        idle_w: 50.0,
                        sleep_w: 0.0,
                        active_w: 50.0 + slope * 1_000.0,
                        peak_rate_pps: 1_000_000.0,
                    },
                    network: EnergyParams {
                        idle_w: 52.0,
                        sleep_w: 0.0,
                        active_w: 52.1,
                        peak_rate_pps: 10_000_000.0,
                    },
                },
                home: DeviceId((i % Self::DEVICES) as u16),
                weight: 1.0,
            });
            base.push(200.0 + Self::PEAK_PPS * zipf.popularity(rank));
        }
        let samples = vec![
            FleetSample {
                host: HostSample {
                    rapl_w: 50.0,
                    app_cpu_util: 0.5,
                    hw_app_rate: 0.0,
                },
                offered_pps: 0.0,
            };
            tenants
        ];
        MegaFabricRig {
            apps,
            base,
            samples,
        }
    }

    /// Number of tenants.
    pub fn tenants(&self) -> usize {
        self.apps.len()
    }

    /// A hierarchical controller over the rig's fabric and tenants in
    /// the given mode (5 % dead band, standard economics, 1 s interval).
    pub fn controller(&self, mode: ArbitrationMode) -> HierarchicalController {
        HierarchicalController::new(
            ArbiterConfig {
                fleet: FleetControllerConfig::standard(Nanos::from_secs(1)),
                mode,
                rate_deadband: 0.05,
            },
            Self::fabric(),
            self.apps.clone(),
        )
    }

    /// The tenant whose load is churning during `tick`'s epoch (it
    /// collapses to a tenth of its steady rate on odd epochs and
    /// recovers on even ones).
    pub fn churner(&self, tick: u64) -> (usize, bool) {
        let epoch = tick / Self::CHURN_PERIOD;
        let tenant = (epoch.wrapping_mul(7919) % self.apps.len() as u64) as usize;
        (tenant, epoch % 2 == 1)
    }

    /// The per-tenant samples of `tick`: steady rates with a ±2 %
    /// wobble (inside the 5 % dead band, so it never re-scores), plus
    /// the epoch's churn event.
    pub fn tick_samples(&mut self, tick: u64) -> &[FleetSample] {
        let (churner, collapsed) = self.churner(tick);
        for (i, s) in self.samples.iter_mut().enumerate() {
            let wobble = 1.0 + 0.01 * ((tick + i as u64) % 3) as f64;
            let mut rate = self.base[i] * wobble;
            if i == churner && collapsed {
                rate *= 0.1;
            }
            s.host.hw_app_rate = rate;
            s.offered_pps = rate;
        }
        &self.samples
    }

    /// Drives `controller` for `ticks` sampling intervals; returns the
    /// number of placement decisions executed. Decision throughput is
    /// `tenants × ticks / elapsed` — every (tenant, interval) pair is an
    /// arbitration decision, however cheaply the pipeline resolved it.
    pub fn run(&mut self, controller: &mut HierarchicalController, ticks: u64) -> u64 {
        let mut decisions = 0u64;
        for tick in 1..=ticks {
            let now = Nanos::from_secs(tick);
            let samples = self.tick_samples(tick);
            decisions += controller.sample(now, samples).len() as u64;
        }
        decisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inc_ondemand::FleetController;

    /// The three tenants' calibrated benefit curves have the shape the
    /// scheduler depends on: negative in the valley (software wins when
    /// idle), clearly positive at each tenant's peak, and the KVS — the
    /// anchor tenant of ToR A — out-scores the Paxos program at their
    /// overlapping peaks so the smaller program is the one that spills.
    #[test]
    fn multi_tor_benefit_calibration() {
        let ctl = FleetController::new(
            inc_ondemand::FleetControllerConfig::standard(Nanos::from_millis(150)),
            MultiTorRig::fabric(),
            MultiTorRig::fleet_apps(),
        );
        let (kvs, dns, pax) = (
            MultiTorRig::KVS_APP,
            MultiTorRig::DNS_APP,
            MultiTorRig::PAX_APP,
        );
        for (app, valley, peak) in [
            (kvs, 2_000.0, 120_000.0),
            (dns, 2_000.0, 80_000.0),
            (pax, 500.0, 10_000.0),
        ] {
            let b_lo = ctl.benefit_w(app, valley);
            let b_hi = ctl.benefit_w(app, peak);
            println!("app {app}: benefit({valley}) = {b_lo:.2} W, benefit({peak}) = {b_hi:.2} W");
            assert!(b_lo < 0.0, "app {app} profitable at valley: {b_lo:.2} W");
            assert!(b_hi > 2.0, "app {app} not profitable at peak: {b_hi:.2} W");
        }
        let kvs_score = ctl.score(kvs, MultiTorRig::TOR_A, 110_000.0);
        let pax_score = ctl.score(pax, MultiTorRig::TOR_A, 10_000.0);
        println!("scores at overlap: kvs {kvs_score:.2}, pax {pax_score:.2}");
        assert!(
            kvs_score * 1.25 > pax_score,
            "paxos would preempt the kvs incumbent: {kvs_score:.2} vs {pax_score:.2}"
        );
    }

    /// The fairness rig's stylised economics have the shape its scenario
    /// depends on: every admitted tenant is profitable at its plateau;
    /// the Paxos program clears the floor even remotely but never wins a
    /// score fight (so pure benefit starves it); the bulk tenant's
    /// demand overflows every device; and the two ToR-A programs'
    /// dominant shares both exceed the three-way entitlement, so claims
    /// can clip in either direction.
    #[test]
    fn contended_fabric_calibration() {
        let interval = Nanos::from_millis(100);
        let ctl = ContendedFabricRig::fleet_controller(interval);
        let (kvs, dns, pax, bulk) = (
            ContendedFabricRig::KVS_APP,
            ContendedFabricRig::DNS_APP,
            ContendedFabricRig::PAX_APP,
            ContendedFabricRig::BULK_APP,
        );
        for app in [kvs, dns, pax, bulk] {
            let peak = ContendedFabricRig::contended_profiles(Nanos::from_secs(8))[app]
                .rate_at(Nanos::from_secs(4));
            assert!(ctl.benefit_w(app, 1_000.0) < 0.0, "app {app} hot at idle");
            assert!(ctl.benefit_w(app, peak) > 2.0, "app {app} cold at peak");
        }
        // Paxos clears the offload floor even across the detour...
        let pax_peak = 12_000.0;
        let remote = ctl.effective_benefit_w(pax, ContendedFabricRig::TOR_B, pax_peak);
        assert!(remote >= ctl.config().min_benefit_w);
        // ...but cannot out-score either incumbent, sticky or not.
        let pax_score = ctl.score(pax, ContendedFabricRig::TOR_A, pax_peak);
        assert!(ctl.score(kvs, ContendedFabricRig::TOR_A, 120_000.0) > pax_score);
        assert!(ctl.score(dns, ContendedFabricRig::TOR_B, 90_000.0) > pax_score);
        // Admission control: only the bulk tenant is unsatisfiable.
        for app in [kvs, dns, pax] {
            assert_eq!(
                ctl.admission_decision(app),
                inc_ondemand::AdmissionDecision::Admit
            );
        }
        assert_eq!(
            ctl.admission_decision(bulk),
            inc_ondemand::AdmissionDecision::Reject
        );
        let device = ContendedFabricRig::fabric()
            .device(ContendedFabricRig::TOR_A)
            .clone();
        assert!(device.cost_units(&ContendedFabricRig::bulk_demand()) > 1.0);
        // Both ToR-A programs are clippable at the 1/3 entitlement.
        assert!(device.cost_units(&SharedDeviceRig::kvs_demand()) > 1.0 / 3.0);
        assert!(device.cost_units(&MultiTorRig::pax_demand()) > 1.0 / 3.0);
        // DNS and Paxos cannot co-reside on ToR B in this rig.
        let mut b = device.clone();
        b.admit(0, ContendedFabricRig::dns_demand()).unwrap();
        assert!(!b.fits(&MultiTorRig::pax_demand()));
    }

    /// The pod-fabric rig's stylised economics have the shape its
    /// scenario depends on: every tenant profitable at its plateau and
    /// cold at the valley; the analytics spiller scores strictly higher
    /// on the near small ToR than on the far identical one; the Paxos
    /// claimant clears the floor even across the core but never wins a
    /// score fight; the edge tenant is the cheapest resident to clip;
    /// and the capacity shape forces the contention (KVS only fits big
    /// ToRs, nothing co-resides with a full plateau assignment).
    #[test]
    fn pod_fabric_calibration() {
        let interval = Nanos::from_millis(100);
        let ctl = PodFabricRig::fleet_controller(interval, ClaimPolicy::MinCost);
        let (kvs, ana, dns, edge, pax) = (
            PodFabricRig::KVS_APP,
            PodFabricRig::ANA_APP,
            PodFabricRig::DNS_APP,
            PodFabricRig::EDGE_APP,
            PodFabricRig::PAX_APP,
        );
        for app in [kvs, ana, dns, edge, pax] {
            let peak = PodFabricRig::contended_profiles(Nanos::from_secs(10))[app]
                .rate_at(Nanos::from_secs(4));
            assert!(ctl.benefit_w(app, 1_000.0) < 0.0, "app {app} hot at idle");
            assert!(ctl.benefit_w(app, peak) > 1.5, "app {app} cold at peak");
        }
        // KVS fits only the big ToRs.
        let fabric = PodFabricRig::fabric();
        assert!(fabric
            .device(PodFabricRig::TOR_A1)
            .budget()
            .admit(&SharedDeviceRig::kvs_demand())
            .is_err());
        // The near and far small ToRs are identical in budget, so only
        // the topology separates the analytics spill — and near must
        // strictly win.
        assert_eq!(
            fabric.device(PodFabricRig::TOR_A1).budget(),
            fabric.device(PodFabricRig::TOR_B1).budget()
        );
        let ana_rate = 90_000.0;
        assert!(
            ctl.score(ana, PodFabricRig::TOR_A1, ana_rate)
                > ctl.score(ana, PodFabricRig::TOR_B1, ana_rate)
        );
        assert_eq!(
            fabric.distance(PodFabricRig::TOR_A0, PodFabricRig::TOR_A1),
            1
        );
        assert_eq!(
            fabric.distance(PodFabricRig::TOR_A0, PodFabricRig::TOR_B1),
            2
        );
        // Paxos: floor-clearing everywhere, outscored everywhere.
        for d in fabric.device_ids() {
            assert!(ctl.effective_benefit_w(pax, d, 12_000.0) >= ctl.config().min_benefit_w);
        }
        // ...each resident out-scores the claimant on its own device, so
        // the knapsack never seats Paxos anywhere.
        let pax_at = |d| ctl.score(pax, d, 12_000.0);
        assert!(ctl.score(kvs, PodFabricRig::TOR_A0, 120_000.0) > pax_at(PodFabricRig::TOR_A0));
        assert!(ctl.score(ana, PodFabricRig::TOR_A1, ana_rate) > pax_at(PodFabricRig::TOR_A1));
        assert!(ctl.score(dns, PodFabricRig::TOR_B0, 90_000.0) > pax_at(PodFabricRig::TOR_B0));
        assert!(ctl.score(edge, PodFabricRig::TOR_B1, 60_000.0) > pax_at(PodFabricRig::TOR_B1));
        // The edge tenant delivers the least benefit of the four
        // residents: the min-cost clip target.
        let edge_w = ctl.effective_benefit_w(edge, PodFabricRig::TOR_B1, 60_000.0);
        assert!(edge_w < ctl.effective_benefit_w(kvs, PodFabricRig::TOR_A0, 120_000.0));
        assert!(edge_w < ctl.effective_benefit_w(ana, PodFabricRig::TOR_A1, ana_rate));
        assert!(edge_w < ctl.effective_benefit_w(dns, PodFabricRig::TOR_B0, 90_000.0));
        // With the natural assignment resident, Paxos fits nowhere.
        let mut full = PodFabricRig::fabric();
        full.admit(PodFabricRig::TOR_A0, 0, SharedDeviceRig::kvs_demand())
            .unwrap();
        full.admit(PodFabricRig::TOR_A1, 1, ctl.apps()[ana].demand)
            .unwrap();
        full.admit(PodFabricRig::TOR_B0, 2, ContendedFabricRig::dns_demand())
            .unwrap();
        full.admit(PodFabricRig::TOR_B1, 3, ctl.apps()[edge].demand)
            .unwrap();
        for d in full.device_ids() {
            assert!(!full.device(d).fits(&MultiTorRig::pax_demand()), "{d}");
        }
    }
}
