//! Reusable simulation topologies for the event-driven experiments.

use inc_dns::{DnsClient, DnsServer, DnsServerConfig, EmuDevice, Zone, DNS_PORT};
use inc_hw::{DeviceCapacity, PipelineBudget, Placement, ProgramResources, HOST_DMA_PORT};
use inc_kvs::{
    expected_value, key_name, KvsClient, LakeCacheConfig, LakeDevice, MemcachedConfig,
    MemcachedServer, OpGen, UniformGen, MEMCACHED_PORT,
};
use inc_net::{Endpoint, Packet};
use inc_net::{L2Switch, Match};
use inc_ondemand::{
    run_fleet_controlled, AppObservation, FleetApp, FleetController, FleetControllerConfig,
    FleetSample, FleetTimeline, HostSample, PlacementAnalysis,
};
use inc_paxos::{
    Acceptor, AcceptorStorage, AddressBook, HostConfig, Leader, Learner, PaxosClient, PaxosNode,
    Platform, RoleEngine, PAXOS_ACCEPTOR_PORT, PAXOS_LEADER_PORT, PAXOS_LEARNER_PORT,
};
use inc_power::{calib, EnergyParams};
use inc_sim::{LinkSpec, Nanos, Node, NodeId, PortId, Simulator};
use inc_workloads::RateProfile;

/// The Figure 1 KVS topology: client ↔ LaKe ↔ memcached.
pub struct KvsRig {
    /// The simulator.
    pub sim: Simulator<Packet>,
    /// Load generator node.
    pub client: NodeId,
    /// LaKe card node.
    pub device: NodeId,
    /// memcached host node.
    pub server: NodeId,
}

impl KvsRig {
    /// Builds the rig with `keys` preloaded keys of `value_len` bytes and
    /// an arbitrary op generator.
    pub fn new(
        seed: u64,
        rate_pps: f64,
        keys: u64,
        value_len: usize,
        gen: Box<dyn OpGen>,
        hardware: bool,
    ) -> Self {
        let mut sim = Simulator::new(seed);
        let client_ep = Endpoint::host(1, 40_000);
        let server_ep = Endpoint::host(2, MEMCACHED_PORT);
        let mut server = MemcachedServer::new(MemcachedConfig::i7_behind_lake());
        server.preload((0..keys).map(|i| {
            let k = key_name(i);
            let v = expected_value(&k, value_len);
            (k, v)
        }));
        let server = sim.add_node(server);
        let mut dev = LakeDevice::new(LakeCacheConfig::tiny(2_048, 65_536), 5);
        if hardware {
            dev = dev.started_in_hardware();
        }
        let device = sim.add_node(dev);
        let client = sim.add_node(KvsClient::open_loop(client_ep, server_ep, rate_pps, gen));
        sim.connect_duplex(
            client,
            PortId::P0,
            device,
            PortId::P0,
            LinkSpec::ten_gbe(Nanos::from_nanos(500)),
        );
        sim.connect_duplex(device, HOST_DMA_PORT, server, PortId::P0, LinkSpec::ideal());
        KvsRig {
            sim,
            client,
            device,
            server,
        }
    }
}

/// The DNS topology: client ↔ Emu ↔ NSD, sharing one zone.
pub struct DnsRig {
    /// The simulator.
    pub sim: Simulator<Packet>,
    /// Query generator node.
    pub client: NodeId,
    /// Emu DNS card node.
    pub device: NodeId,
    /// NSD host node.
    pub server: NodeId,
}

impl DnsRig {
    /// Builds the rig over a synthetic zone of `names` records.
    pub fn new(seed: u64, rate_pps: f64, names: u64, hardware: bool) -> Self {
        let mut sim = Simulator::new(seed);
        let zone = Zone::synthetic(names);
        let server = sim.add_node(DnsServer::new(
            DnsServerConfig::nsd_behind_emu(),
            zone.clone(),
        ));
        let mut dev = EmuDevice::new(zone);
        if hardware {
            dev = dev.started_in_hardware();
        }
        let device = sim.add_node(dev);
        let client = sim.add_node(DnsClient::new(
            Endpoint::host(1, 40_000),
            Endpoint::host(2, inc_dns::DNS_PORT),
            rate_pps,
            names,
        ));
        sim.connect_duplex(
            client,
            PortId::P0,
            device,
            PortId::P0,
            LinkSpec::ten_gbe(Nanos::from_nanos(500)),
        );
        sim.connect_duplex(device, HOST_DMA_PORT, server, PortId::P0, LinkSpec::ideal());
        DnsRig {
            sim,
            client,
            device,
            server,
        }
    }
}

/// The Figure 7 Paxos topology: clients + software/hardware leaders +
/// three acceptors + learner, joined by a steerable switch.
pub struct PaxosRig {
    /// The simulator.
    pub sim: Simulator<Packet>,
    /// The switch.
    pub switch: NodeId,
    /// Closed-loop clients.
    pub clients: Vec<NodeId>,
    /// The libpaxos leader node.
    pub sw_leader: NodeId,
    /// The P4xos (FPGA) leader node.
    pub hw_leader: NodeId,
    /// Acceptor nodes.
    pub acceptors: Vec<NodeId>,
    /// Learner node.
    pub learner: NodeId,
    /// Switch port of the software leader.
    pub sw_leader_port: PortId,
    /// Switch port of the hardware leader.
    pub hw_leader_port: PortId,
    next_round: u16,
}

impl PaxosRig {
    const N_ACCEPTORS: usize = 3;

    fn book(own: Endpoint) -> AddressBook {
        AddressBook {
            own,
            leader: Endpoint::host(99, PAXOS_LEADER_PORT),
            acceptors: (0..Self::N_ACCEPTORS as u32)
                .map(|i| Endpoint::host(10 + i, PAXOS_ACCEPTOR_PORT))
                .collect(),
            learners: vec![Endpoint::host(30, PAXOS_LEARNER_PORT)],
        }
    }

    /// Builds the rig with `n_clients` closed-loop clients (one
    /// outstanding command each) and the given retry timeout.
    pub fn new(seed: u64, n_clients: u32, timeout: Nanos) -> Self {
        let mut sim = Simulator::new(seed);
        let n_ports = 4 + n_clients as u16 + Self::N_ACCEPTORS as u16;
        let switch = sim.add_node(L2Switch::new(n_ports));
        let mut next_port = 0u16;
        let mut attach = |sim: &mut Simulator<Packet>, node: NodeId| -> PortId {
            let p = PortId(next_port);
            next_port += 1;
            sim.connect_duplex(
                node,
                PortId::P0,
                switch,
                p,
                LinkSpec::ten_gbe(Nanos::from_micros(1)),
            );
            p
        };
        let sw_leader = sim.add_node(PaxosNode::new(
            RoleEngine::Leader(Leader::bootstrap(1, Self::N_ACCEPTORS)),
            Platform::host(HostConfig::libpaxos_leader()),
            Self::book(Endpoint::host(20, PAXOS_LEADER_PORT)),
        ));
        let sw_leader_port = attach(&mut sim, sw_leader);
        let hw_leader = sim.add_node(PaxosNode::new(
            RoleEngine::Idle,
            Platform::fpga(),
            Self::book(Endpoint::host(21, PAXOS_LEADER_PORT)),
        ));
        let hw_leader_port = attach(&mut sim, hw_leader);
        let mut acceptors = Vec::new();
        for i in 0..Self::N_ACCEPTORS as u32 {
            let ep = Endpoint::host(10 + i, PAXOS_ACCEPTOR_PORT);
            let n = sim.add_node(PaxosNode::new(
                RoleEngine::Acceptor(Acceptor::new(i as u8, AcceptorStorage::unbounded())),
                Platform::host(HostConfig::libpaxos_acceptor()),
                Self::book(ep),
            ));
            attach(&mut sim, n);
            acceptors.push(n);
        }
        let learner = sim.add_node(PaxosNode::new(
            RoleEngine::Learner(Learner::new(Self::N_ACCEPTORS)),
            Platform::host(HostConfig::libpaxos_learner()),
            Self::book(Endpoint::host(30, PAXOS_LEARNER_PORT)),
        ));
        attach(&mut sim, learner);
        let mut clients = Vec::new();
        for id in 0..n_clients {
            let c = sim.add_node(PaxosClient::new(
                100 + id,
                Endpoint::host(99, PAXOS_LEADER_PORT),
                1,
                timeout,
            ));
            attach(&mut sim, c);
            clients.push(c);
        }
        sim.node_mut::<L2Switch>(switch)
            .steer(Match::udp_dst(PAXOS_LEADER_PORT), sw_leader_port);
        PaxosRig {
            sim,
            switch,
            clients,
            sw_leader,
            hw_leader,
            acceptors,
            learner,
            sw_leader_port,
            hw_leader_port,
            next_round: 2,
        }
    }

    /// Shifts the leader role to the hardware node (§9.2).
    ///
    /// Rule replacement is not atomic in a real switch: the old leader is
    /// stopped first, and for a brief window leader-bound traffic still
    /// reaches it and is lost — the loss the client retry timeout covers
    /// (the ~100 ms zero-throughput dip of Figure 7).
    pub fn shift_leader_to_hardware(&mut self) {
        self.shift_leader(
            self.sw_leader,
            self.hw_leader,
            self.sw_leader_port,
            self.hw_leader_port,
        );
    }

    /// Shifts the leader role back to the software node.
    pub fn shift_leader_to_software(&mut self) {
        self.shift_leader(
            self.hw_leader,
            self.sw_leader,
            self.hw_leader_port,
            self.sw_leader_port,
        );
    }

    fn shift_leader(&mut self, from: NodeId, to: NodeId, from_port: PortId, to_port: PortId) {
        let round = self.next_round;
        self.next_round += 1;
        // Stop the old leader; traffic keeps flowing to it (and dying)
        // while the controller replaces the forwarding rule.
        self.sim.node_mut::<PaxosNode>(from).deactivate();
        let now = self.sim.now();
        self.sim.run_until(now + Nanos::from_millis(1));
        {
            let sw = self.sim.node_mut::<L2Switch>(self.switch);
            sw.unsteer_port(from_port);
            sw.steer(Match::udp_dst(PAXOS_LEADER_PORT), to_port);
        }
        self.sim
            .with_node_ctx::<PaxosNode, _>(to, |n, ctx| n.activate_leader(ctx, round));
    }

    /// Total commands acknowledged across clients.
    pub fn total_acked(&self) -> u64 {
        self.clients
            .iter()
            .map(|&c| self.sim.node_ref::<PaxosClient>(c).stats().acked)
            .sum()
    }
}

/// The shared-device topology: KVS and DNS tenants contending for one
/// capacity-bounded programmable device.
///
/// The physical card is modelled as two logical partitions — the LaKe
/// engine serving memcached traffic and the Emu core serving DNS — each a
/// bump-in-the-wire in front of its software server. Whether a
/// partition's program may be *resident* (hardware placement) is decided
/// by the `FleetController`'s shared [`DeviceCapacity`] ledger: the
/// [`SharedDeviceRig::shared_budget`] admits either program alone but not
/// both, so every offload is an arbitration decision. The shell base
/// power appears once per partition; it is a constant offset common to
/// every placement configuration, so energy *comparisons* between
/// schedules are unaffected.
pub struct SharedDeviceRig {
    /// The simulator.
    pub sim: Simulator<Packet>,
    /// KVS load generator.
    pub kvs_client: NodeId,
    /// LaKe partition of the shared card.
    pub kvs_device: NodeId,
    /// memcached host node.
    pub kvs_server: NodeId,
    /// DNS query generator.
    pub dns_client: NodeId,
    /// Emu partition of the shared card.
    pub dns_device: NodeId,
    /// NSD host node.
    pub dns_server: NodeId,
    /// Offered-rate schedule of the KVS tenant.
    pub kvs_profile: RateProfile,
    /// Offered-rate schedule of the DNS tenant.
    pub dns_profile: RateProfile,
}

impl SharedDeviceRig {
    /// Index of the KVS tenant in the fleet's app vector.
    pub const KVS_APP: usize = 0;
    /// Index of the DNS tenant in the fleet's app vector.
    pub const DNS_APP: usize = 1;

    /// Rate at which the (linearised) software power fit is anchored.
    const KVS_FIT_PPS: f64 = 200_000.0;
    const DNS_FIT_PPS: f64 = 150_000.0;

    /// The canonical contended scenario: two offset diurnal days over
    /// `period` — the KVS peaks at ~0.29 of the day, the DNS at ~0.63 —
    /// whose busy windows overlap enough that the hand-over is an
    /// arbitration decision rather than two disjoint bursts. Shared by
    /// the e2e test, the example, and the criterion bench so they all
    /// exercise the same scenario.
    pub fn contended_profiles(period: Nanos) -> (RateProfile, RateProfile) {
        (
            RateProfile::diurnal(
                2_000.0,
                120_000.0,
                period,
                period.mul_f64(3.0 / 14.0),
                3,
                64,
            ),
            RateProfile::diurnal(
                2_000.0,
                80_000.0,
                period,
                period.mul_f64(61.0 / 70.0),
                3,
                64,
            ),
        )
    }

    /// Builds the rig: both tenants preloaded and idling in software.
    pub fn new(
        seed: u64,
        keys: u64,
        names: u64,
        kvs_profile: RateProfile,
        dns_profile: RateProfile,
    ) -> Self {
        let mut sim = Simulator::new(seed);

        // KVS slice.
        let mut server = MemcachedServer::new(MemcachedConfig::i7_behind_lake());
        server.preload((0..keys).map(|i| {
            let k = key_name(i);
            let v = expected_value(&k, 64);
            (k, v)
        }));
        let kvs_server = sim.add_node(server);
        let kvs_device = sim.add_node(LakeDevice::new(LakeCacheConfig::tiny(2_048, 65_536), 5));
        let kvs_client = sim.add_node(KvsClient::open_loop(
            Endpoint::host(1, 40_000),
            Endpoint::host(2, MEMCACHED_PORT),
            kvs_profile.rate_at(Nanos::ZERO),
            Box::new(UniformGen {
                keys,
                get_ratio: 0.97,
                value_len: 64,
            }),
        ));
        sim.connect_duplex(
            kvs_client,
            PortId::P0,
            kvs_device,
            PortId::P0,
            LinkSpec::ten_gbe(Nanos::from_nanos(500)),
        );
        sim.connect_duplex(
            kvs_device,
            HOST_DMA_PORT,
            kvs_server,
            PortId::P0,
            LinkSpec::ideal(),
        );

        // DNS slice.
        let zone = Zone::synthetic(names);
        let dns_server = sim.add_node(DnsServer::new(
            DnsServerConfig::nsd_behind_emu(),
            zone.clone(),
        ));
        let dns_device = sim.add_node(EmuDevice::new(zone));
        let dns_client = sim.add_node(DnsClient::new(
            Endpoint::host(3, 41_000),
            Endpoint::host(4, DNS_PORT),
            dns_profile.rate_at(Nanos::ZERO),
            names,
        ));
        sim.connect_duplex(
            dns_client,
            PortId::P0,
            dns_device,
            PortId::P0,
            LinkSpec::ten_gbe(Nanos::from_nanos(500)),
        );
        sim.connect_duplex(
            dns_device,
            HOST_DMA_PORT,
            dns_server,
            PortId::P0,
            LinkSpec::ideal(),
        );

        SharedDeviceRig {
            sim,
            kvs_client,
            kvs_device,
            kvs_server,
            dns_client,
            dns_device,
            dns_server,
            kvs_profile,
            dns_profile,
        }
    }

    /// The shared device budget: a Tofino-class pipeline that admits
    /// either tenant's program alone but not both (13 stages > 12,
    /// 60 MB SRAM > 48 MB).
    pub fn shared_budget() -> PipelineBudget {
        PipelineBudget::tofino_like()
    }

    /// The LaKe program's capacity claim: SRAM-bound (hash table plus
    /// value-store tables claim most of the device's stateful memory).
    pub fn kvs_demand() -> ProgramResources {
        ProgramResources {
            stages: 7,
            sram_bytes: 40 << 20,
            parse_depth_bytes: 96,
        }
    }

    /// The Emu program's capacity claim: stage-bound (name parsing burns
    /// pipeline stages, the record table is modest).
    pub fn dns_demand() -> ProgramResources {
        ProgramResources {
            stages: 6,
            sram_bytes: 20 << 20,
            parse_depth_bytes: 128,
        }
    }

    /// The §8 benefit analyses for both tenants, with the *shared-NIC*
    /// economics: the card is present in both placements (it is the
    /// host's NIC), so software placement pays the parked card while
    /// hardware placement pays the unparked card — the idle terms are the
    /// measured parked/unparked powers of the calibrated device models,
    /// and the software dynamic term is the host CPU model linearised at
    /// the fit anchor.
    pub fn fleet_apps() -> Vec<FleetApp> {
        // Parked vs unparked powers, measured from the device models
        // exactly as the simulation will meter them.
        let lake_cfg = LakeCacheConfig::tiny(8, 32);
        let lake_parked = LakeDevice::new(lake_cfg, 5).power_w(Nanos::ZERO);
        let lake_active = LakeDevice::new(lake_cfg, 5)
            .started_in_hardware()
            .power_w(Nanos::ZERO);
        let emu_parked = EmuDevice::new(Zone::synthetic(1)).power_w(Nanos::ZERO);
        let emu_active = EmuDevice::new(Zone::synthetic(1))
            .started_in_hardware()
            .power_w(Nanos::ZERO);

        let mc = MemcachedConfig::i7_behind_lake();
        let kvs_sw_idle = calib::I7_PLATFORM_IDLE_W + lake_parked;
        let kvs_dyn_at_fit = mc
            .cpu
            .dynamic_w(Self::KVS_FIT_PPS * mc.service_time.as_secs_f64());
        let kvs_hw_idle = calib::I7_PLATFORM_IDLE_W + lake_active;

        let nsd = DnsServerConfig::nsd_behind_emu();
        let dns_sw_idle = calib::I7_PLATFORM_IDLE_W + emu_parked;
        let dns_dyn_at_fit = nsd
            .cpu
            .dynamic_w(Self::DNS_FIT_PPS * nsd.service_time.as_secs_f64());
        let dns_hw_idle = calib::I7_PLATFORM_IDLE_W + emu_active;

        vec![
            FleetApp {
                name: "kvs".into(),
                demand: Self::kvs_demand(),
                analysis: PlacementAnalysis {
                    software: EnergyParams {
                        idle_w: kvs_sw_idle,
                        sleep_w: 0.0,
                        active_w: kvs_sw_idle + kvs_dyn_at_fit,
                        peak_rate_pps: Self::KVS_FIT_PPS,
                    },
                    network: EnergyParams {
                        idle_w: kvs_hw_idle,
                        sleep_w: 0.0,
                        active_w: kvs_hw_idle + calib::LAKE_DYNAMIC_MAX_W,
                        peak_rate_pps: calib::LAKE_LINE_RATE_PPS,
                    },
                },
            },
            FleetApp {
                name: "dns".into(),
                demand: Self::dns_demand(),
                analysis: PlacementAnalysis {
                    software: EnergyParams {
                        idle_w: dns_sw_idle,
                        sleep_w: 0.0,
                        active_w: dns_sw_idle + dns_dyn_at_fit,
                        peak_rate_pps: Self::DNS_FIT_PPS,
                    },
                    network: EnergyParams {
                        idle_w: dns_hw_idle,
                        sleep_w: 0.0,
                        active_w: dns_hw_idle + calib::EMU_DNS_DYNAMIC_MAX_W,
                        peak_rate_pps: calib::EMU_DNS_PEAK_RPS,
                    },
                },
            },
        ]
    }

    /// A fleet controller over the shared budget with the standard
    /// hysteresis settings.
    pub fn fleet_controller(interval: Nanos) -> FleetController {
        FleetController::new(
            FleetControllerConfig::standard(interval),
            DeviceCapacity::new(Self::shared_budget()),
            Self::fleet_apps(),
        )
    }

    /// A controller pinned to a fixed placement vector (the static
    /// baselines the on-demand schedule is judged against): an infinite
    /// sustain window means no condition ever completes.
    pub fn pinned_controller(interval: Nanos, placements: [Placement; 2]) -> FleetController {
        let config = FleetControllerConfig {
            sustain_samples: u32::MAX,
            ..FleetControllerConfig::standard(interval)
        };
        FleetController::new(
            config,
            DeviceCapacity::new(Self::shared_budget()),
            Self::fleet_apps(),
        )
        .with_initial_placements(&placements)
    }

    /// Runs the experiment until `until` under `controller`, driving both
    /// tenants' diurnal schedules and recording per-app timelines plus
    /// total metered energy (each tenant's device partition and server).
    pub fn run(&mut self, controller: &mut FleetController, until: Nanos) -> FleetTimeline {
        // Execute any pre-seeded placements on the simulated hardware.
        let now = self.sim.now();
        if controller.placements()[Self::KVS_APP] == Placement::Hardware {
            self.sim
                .node_mut::<LakeDevice>(self.kvs_device)
                .apply_placement(now, Placement::Hardware);
        }
        if controller.placements()[Self::DNS_APP] == Placement::Hardware {
            self.sim
                .node_mut::<EmuDevice>(self.dns_device)
                .apply_placement(now, Placement::Hardware);
        }
        let interval = controller.config().interval;
        let (kvs_client, kvs_device, kvs_server) =
            (self.kvs_client, self.kvs_device, self.kvs_server);
        let (dns_client, dns_device, dns_server) =
            (self.dns_client, self.dns_device, self.dns_server);
        let kvs_profile = self.kvs_profile.clone();
        let dns_profile = self.dns_profile.clone();
        run_fleet_controlled(
            &mut self.sim,
            controller,
            until,
            |sim| {
                let now = sim.now();
                // Follow the offered-rate schedules.
                sim.node_mut::<KvsClient>(kvs_client)
                    .set_rate(kvs_profile.rate_at(now));
                sim.node_mut::<DnsClient>(dns_client)
                    .set_rate(dns_profile.rate_at(now));
                // The host-measured arrival rate over the elapsed interval
                // (sampled at its midpoint): completions would understate
                // offered load whenever the software server saturates —
                // exactly when offloading matters most.
                let mid = now - interval.mul_f64(0.5);
                let kvs_offered = kvs_profile.rate_at(mid);
                let dns_offered = dns_profile.rate_at(mid);
                let (kvs_done, kvs_lat) = sim.node_mut::<KvsClient>(kvs_client).take_window();
                let (dns_done, dns_lat) = sim.node_mut::<DnsClient>(dns_client).take_window();
                vec![
                    AppObservation {
                        sample: FleetSample {
                            host: HostSample {
                                rapl_w: sim.node_ref::<MemcachedServer>(kvs_server).power_w(now),
                                app_cpu_util: sim
                                    .node_ref::<MemcachedServer>(kvs_server)
                                    .app_utilization(),
                                hw_app_rate: sim
                                    .node_mut::<LakeDevice>(kvs_device)
                                    .measured_rate(now),
                            },
                            offered_pps: kvs_offered,
                        },
                        completed: kvs_done,
                        latency_p50_ns: kvs_lat.quantile(0.5),
                        latency_p99_ns: kvs_lat.quantile(0.99),
                        power_w: sim.instant_power(&[kvs_device, kvs_server]),
                    },
                    AppObservation {
                        sample: FleetSample {
                            host: HostSample {
                                rapl_w: Node::power_w(sim.node_ref::<DnsServer>(dns_server), now),
                                app_cpu_util: sim.node_ref::<DnsServer>(dns_server).utilization(),
                                hw_app_rate: sim
                                    .node_mut::<EmuDevice>(dns_device)
                                    .measured_rate(now),
                            },
                            offered_pps: dns_offered,
                        },
                        completed: dns_done,
                        latency_p50_ns: dns_lat.quantile(0.5),
                        latency_p99_ns: dns_lat.quantile(0.99),
                        power_w: sim.instant_power(&[dns_device, dns_server]),
                    },
                ]
            },
            |sim, t, app, p| match app {
                Self::KVS_APP => sim.node_mut::<LakeDevice>(kvs_device).apply_placement(t, p),
                _ => sim.node_mut::<EmuDevice>(dns_device).apply_placement(t, p),
            },
        )
    }
}
