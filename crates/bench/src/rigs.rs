//! Reusable simulation topologies for the event-driven experiments.

use inc_dns::{DnsClient, DnsServer, DnsServerConfig, EmuDevice, Zone};
use inc_hw::HOST_DMA_PORT;
use inc_kvs::{
    expected_value, key_name, KvsClient, LakeCacheConfig, LakeDevice, MemcachedConfig,
    MemcachedServer, OpGen, MEMCACHED_PORT,
};
use inc_net::{Endpoint, Packet};
use inc_net::{L2Switch, Match};
use inc_paxos::{
    Acceptor, AcceptorStorage, AddressBook, HostConfig, Leader, Learner, PaxosClient, PaxosNode,
    Platform, RoleEngine, PAXOS_ACCEPTOR_PORT, PAXOS_LEADER_PORT, PAXOS_LEARNER_PORT,
};
use inc_sim::{LinkSpec, Nanos, NodeId, PortId, Simulator};

/// The Figure 1 KVS topology: client ↔ LaKe ↔ memcached.
pub struct KvsRig {
    /// The simulator.
    pub sim: Simulator<Packet>,
    /// Load generator node.
    pub client: NodeId,
    /// LaKe card node.
    pub device: NodeId,
    /// memcached host node.
    pub server: NodeId,
}

impl KvsRig {
    /// Builds the rig with `keys` preloaded keys of `value_len` bytes and
    /// an arbitrary op generator.
    pub fn new(
        seed: u64,
        rate_pps: f64,
        keys: u64,
        value_len: usize,
        gen: Box<dyn OpGen>,
        hardware: bool,
    ) -> Self {
        let mut sim = Simulator::new(seed);
        let client_ep = Endpoint::host(1, 40_000);
        let server_ep = Endpoint::host(2, MEMCACHED_PORT);
        let mut server = MemcachedServer::new(MemcachedConfig::i7_behind_lake());
        server.preload((0..keys).map(|i| {
            let k = key_name(i);
            let v = expected_value(&k, value_len);
            (k, v)
        }));
        let server = sim.add_node(server);
        let mut dev = LakeDevice::new(LakeCacheConfig::tiny(2_048, 65_536), 5);
        if hardware {
            dev = dev.started_in_hardware();
        }
        let device = sim.add_node(dev);
        let client = sim.add_node(KvsClient::open_loop(client_ep, server_ep, rate_pps, gen));
        sim.connect_duplex(
            client,
            PortId::P0,
            device,
            PortId::P0,
            LinkSpec::ten_gbe(Nanos::from_nanos(500)),
        );
        sim.connect_duplex(device, HOST_DMA_PORT, server, PortId::P0, LinkSpec::ideal());
        KvsRig {
            sim,
            client,
            device,
            server,
        }
    }
}

/// The DNS topology: client ↔ Emu ↔ NSD, sharing one zone.
pub struct DnsRig {
    /// The simulator.
    pub sim: Simulator<Packet>,
    /// Query generator node.
    pub client: NodeId,
    /// Emu DNS card node.
    pub device: NodeId,
    /// NSD host node.
    pub server: NodeId,
}

impl DnsRig {
    /// Builds the rig over a synthetic zone of `names` records.
    pub fn new(seed: u64, rate_pps: f64, names: u64, hardware: bool) -> Self {
        let mut sim = Simulator::new(seed);
        let zone = Zone::synthetic(names);
        let server = sim.add_node(DnsServer::new(
            DnsServerConfig::nsd_behind_emu(),
            zone.clone(),
        ));
        let mut dev = EmuDevice::new(zone);
        if hardware {
            dev = dev.started_in_hardware();
        }
        let device = sim.add_node(dev);
        let client = sim.add_node(DnsClient::new(
            Endpoint::host(1, 40_000),
            Endpoint::host(2, inc_dns::DNS_PORT),
            rate_pps,
            names,
        ));
        sim.connect_duplex(
            client,
            PortId::P0,
            device,
            PortId::P0,
            LinkSpec::ten_gbe(Nanos::from_nanos(500)),
        );
        sim.connect_duplex(device, HOST_DMA_PORT, server, PortId::P0, LinkSpec::ideal());
        DnsRig {
            sim,
            client,
            device,
            server,
        }
    }
}

/// The Figure 7 Paxos topology: clients + software/hardware leaders +
/// three acceptors + learner, joined by a steerable switch.
pub struct PaxosRig {
    /// The simulator.
    pub sim: Simulator<Packet>,
    /// The switch.
    pub switch: NodeId,
    /// Closed-loop clients.
    pub clients: Vec<NodeId>,
    /// The libpaxos leader node.
    pub sw_leader: NodeId,
    /// The P4xos (FPGA) leader node.
    pub hw_leader: NodeId,
    /// Acceptor nodes.
    pub acceptors: Vec<NodeId>,
    /// Learner node.
    pub learner: NodeId,
    /// Switch port of the software leader.
    pub sw_leader_port: PortId,
    /// Switch port of the hardware leader.
    pub hw_leader_port: PortId,
    next_round: u16,
}

impl PaxosRig {
    const N_ACCEPTORS: usize = 3;

    fn book(own: Endpoint) -> AddressBook {
        AddressBook {
            own,
            leader: Endpoint::host(99, PAXOS_LEADER_PORT),
            acceptors: (0..Self::N_ACCEPTORS as u32)
                .map(|i| Endpoint::host(10 + i, PAXOS_ACCEPTOR_PORT))
                .collect(),
            learners: vec![Endpoint::host(30, PAXOS_LEARNER_PORT)],
        }
    }

    /// Builds the rig with `n_clients` closed-loop clients (one
    /// outstanding command each) and the given retry timeout.
    pub fn new(seed: u64, n_clients: u32, timeout: Nanos) -> Self {
        let mut sim = Simulator::new(seed);
        let n_ports = 4 + n_clients as u16 + Self::N_ACCEPTORS as u16;
        let switch = sim.add_node(L2Switch::new(n_ports));
        let mut next_port = 0u16;
        let mut attach = |sim: &mut Simulator<Packet>, node: NodeId| -> PortId {
            let p = PortId(next_port);
            next_port += 1;
            sim.connect_duplex(
                node,
                PortId::P0,
                switch,
                p,
                LinkSpec::ten_gbe(Nanos::from_micros(1)),
            );
            p
        };
        let sw_leader = sim.add_node(PaxosNode::new(
            RoleEngine::Leader(Leader::bootstrap(1, Self::N_ACCEPTORS)),
            Platform::host(HostConfig::libpaxos_leader()),
            Self::book(Endpoint::host(20, PAXOS_LEADER_PORT)),
        ));
        let sw_leader_port = attach(&mut sim, sw_leader);
        let hw_leader = sim.add_node(PaxosNode::new(
            RoleEngine::Idle,
            Platform::fpga(),
            Self::book(Endpoint::host(21, PAXOS_LEADER_PORT)),
        ));
        let hw_leader_port = attach(&mut sim, hw_leader);
        let mut acceptors = Vec::new();
        for i in 0..Self::N_ACCEPTORS as u32 {
            let ep = Endpoint::host(10 + i, PAXOS_ACCEPTOR_PORT);
            let n = sim.add_node(PaxosNode::new(
                RoleEngine::Acceptor(Acceptor::new(i as u8, AcceptorStorage::unbounded())),
                Platform::host(HostConfig::libpaxos_acceptor()),
                Self::book(ep),
            ));
            attach(&mut sim, n);
            acceptors.push(n);
        }
        let learner = sim.add_node(PaxosNode::new(
            RoleEngine::Learner(Learner::new(Self::N_ACCEPTORS)),
            Platform::host(HostConfig::libpaxos_learner()),
            Self::book(Endpoint::host(30, PAXOS_LEARNER_PORT)),
        ));
        attach(&mut sim, learner);
        let mut clients = Vec::new();
        for id in 0..n_clients {
            let c = sim.add_node(PaxosClient::new(
                100 + id,
                Endpoint::host(99, PAXOS_LEADER_PORT),
                1,
                timeout,
            ));
            attach(&mut sim, c);
            clients.push(c);
        }
        sim.node_mut::<L2Switch>(switch)
            .steer(Match::udp_dst(PAXOS_LEADER_PORT), sw_leader_port);
        PaxosRig {
            sim,
            switch,
            clients,
            sw_leader,
            hw_leader,
            acceptors,
            learner,
            sw_leader_port,
            hw_leader_port,
            next_round: 2,
        }
    }

    /// Shifts the leader role to the hardware node (§9.2).
    ///
    /// Rule replacement is not atomic in a real switch: the old leader is
    /// stopped first, and for a brief window leader-bound traffic still
    /// reaches it and is lost — the loss the client retry timeout covers
    /// (the ~100 ms zero-throughput dip of Figure 7).
    pub fn shift_leader_to_hardware(&mut self) {
        self.shift_leader(
            self.sw_leader,
            self.hw_leader,
            self.sw_leader_port,
            self.hw_leader_port,
        );
    }

    /// Shifts the leader role back to the software node.
    pub fn shift_leader_to_software(&mut self) {
        self.shift_leader(
            self.hw_leader,
            self.sw_leader,
            self.hw_leader_port,
            self.sw_leader_port,
        );
    }

    fn shift_leader(&mut self, from: NodeId, to: NodeId, from_port: PortId, to_port: PortId) {
        let round = self.next_round;
        self.next_round += 1;
        // Stop the old leader; traffic keeps flowing to it (and dying)
        // while the controller replaces the forwarding rule.
        self.sim.node_mut::<PaxosNode>(from).deactivate();
        let now = self.sim.now();
        self.sim.run_until(now + Nanos::from_millis(1));
        {
            let sw = self.sim.node_mut::<L2Switch>(self.switch);
            sw.unsteer_port(from_port);
            sw.steer(Match::udp_dst(PAXOS_LEADER_PORT), to_port);
        }
        self.sim
            .with_node_ctx::<PaxosNode, _>(to, |n, ctx| n.activate_leader(ctx, round));
    }

    /// Total commands acknowledged across clients.
    pub fn total_acked(&self) -> u64 {
        self.clients
            .iter()
            .map(|&c| self.sim.node_ref::<PaxosClient>(c).stats().acked)
            .sum()
    }
}
