//! The price-aware placement rig: the same contended
//! [`PodFabricRig`] day scheduled under different
//! [`Objective`]s.
//!
//! The experiment behind `examples/economics.rs` and the CI economics
//! floor: run the five-tenant contended plateau three times —
//!
//! * **joules** — the default energy objective (the historical
//!   behaviour, bit for bit);
//! * **uniform dollar** — `Dollar { per_joule: 1.0, per_gb_moved: 0.0 }`,
//!   which must *degenerate* to the joule schedule exactly (same shift
//!   log, same placements, same energy — a pure unit relabel);
//! * **skewed dollar** — a tariff that charges for detour *bytes* as
//!   well as joules, which makes the analytics tenant's spill onto the
//!   near small ToR uneconomic: its detour-priced value falls under the
//!   admission floor, so it stays in host software and the placement
//!   *set* changes even though no energy constant moved.
//!
//! That pair of facts — uniform prices reproduce the energy optimum
//! bit-for-bit, skewed prices pick a different placement set — is what
//! distinguishes a genuinely pluggable objective from a rescaled one,
//! and it is exactly what the `economics.json` artifact asserts.

use inc_hw::Placement;
use inc_ondemand::{
    ClaimPolicy, FleetController, FleetControllerConfig, FleetShift, FleetTimeline, Objective,
};
use inc_sim::Nanos;

use crate::rigs::PodFabricRig;

/// The day length every objective replays.
pub const HORIZON: Nanos = Nanos::from_secs(10);
/// Sampling interval of the control loop.
pub const INTERVAL: Nanos = Nanos::from_millis(100);
/// Probe instant for the steady contended placements: deep inside the
/// plateau (which runs from 0.3 s to 7 s), after every spill and
/// fairness claim has settled.
pub const PROBE: Nanos = Nanos::from_secs(5);

/// The skewed tariff: one dollar per joule plus a data-movement charge
/// per detour gigabyte steep enough that the analytics tenant's
/// intra-pod spill (≈ 0.27 GB/s of request+response bytes through the
/// aggregation switch) no longer clears the admission floor.
pub const SKEW_PER_GB: f64 = 15.0;

/// One objective's replay of the contended day.
#[derive(Clone, Debug)]
pub struct EconomicsRun {
    /// The objective the controller priced with.
    pub objective: Objective,
    /// Placements at [`PROBE`], indexed like
    /// [`PodFabricRig::fleet_apps`].
    pub placements: Vec<Placement>,
    /// The full-horizon shift log.
    pub shifts: Vec<FleetShift>,
    /// Metered fleet energy over the full horizon, joules (metered
    /// energy is objective-independent: prices steer decisions, meters
    /// stay physical).
    pub energy_j: f64,
}

/// The three-run comparison the economics artifact is built from.
#[derive(Clone, Debug)]
pub struct EconomicsReport {
    /// The default energy objective.
    pub joules: EconomicsRun,
    /// `Dollar { per_joule: 1.0, per_gb_moved: 0.0 }`.
    pub uniform: EconomicsRun,
    /// `Dollar { per_joule: 1.0, per_gb_moved: SKEW_PER_GB }`.
    pub skewed: EconomicsRun,
}

/// The price-aware placement rig (all state lives in
/// [`PodFabricRig`]; this type namespaces the objective sweep).
pub struct EconomicsRig;

impl EconomicsRig {
    /// A fleet controller over the [`PodFabricRig`] fabric pricing with
    /// `objective` (min-cost hand-overs, the rig's standard economics
    /// otherwise).
    pub fn controller(objective: Objective) -> FleetController {
        let config = FleetControllerConfig {
            claim_policy: ClaimPolicy::MinCost,
            objective,
            ..PodFabricRig::config(INTERVAL)
        };
        FleetController::new(config, PodFabricRig::fabric(), PodFabricRig::fleet_apps())
    }

    /// Replays the contended day under `objective`: placements are
    /// probed mid-plateau, the shift log and energy cover the full
    /// horizon.
    pub fn run(objective: Objective) -> EconomicsRun {
        let rig = PodFabricRig::new(PodFabricRig::contended_profiles(HORIZON));
        // Probe run: stop mid-plateau and read the settled placements.
        let mut probe = Self::controller(objective);
        rig.run(&mut probe, PROBE);
        let placements = probe.placements().to_vec();
        // Full run: the complete day for the shift log and the meter.
        let mut full = Self::controller(objective);
        let timeline: FleetTimeline = rig.run(&mut full, HORIZON);
        EconomicsRun {
            objective,
            placements,
            shifts: full.shifts().to_vec(),
            energy_j: timeline.energy_j,
        }
    }

    /// Runs all three objectives.
    pub fn report() -> EconomicsReport {
        EconomicsReport {
            joules: Self::run(Objective::Joules),
            uniform: Self::run(Objective::Dollar {
                per_joule: 1.0,
                per_gb_moved: 0.0,
            }),
            skewed: Self::run(Objective::Dollar {
                per_joule: 1.0,
                per_gb_moved: SKEW_PER_GB,
            }),
        }
    }
}

/// Bitwise equality of two shift logs: every field, including the
/// priced `benefit_w`, compared by `to_bits` — the degeneration
/// contract (`x`, `1.0 × x` and `x − 0.0` must be the *same float*,
/// not merely close).
pub fn shift_logs_identical(a: &[FleetShift], b: &[FleetShift]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.at == y.at
                && x.app == y.app
                && x.to == y.to
                && x.rate_pps.to_bits() == y.rate_pps.to_bits()
                && x.benefit_w.to_bits() == y.benefit_w.to_bits()
                && x.reason == y.reason
        })
}

impl EconomicsReport {
    /// Does the skewed tariff pick a different placement *set* than the
    /// energy objective? (The headline claim: prices change decisions,
    /// not just units.)
    pub fn placement_sets_differ(&self) -> bool {
        self.joules.placements != self.skewed.placements
    }

    /// Does the uniform tariff reproduce the energy schedule exactly —
    /// same probed placements *and* a bit-identical shift log?
    pub fn uniform_matches_joules(&self) -> bool {
        self.joules.placements == self.uniform.placements
            && shift_logs_identical(&self.joules.shifts, &self.uniform.shifts)
    }

    /// The economics metrics for `economics.json` (1.0 = holds): the
    /// two headline booleans plus the evidence behind them.
    pub fn metrics(&self) -> Vec<(&'static str, f64)> {
        let offloaded = |run: &EconomicsRun| {
            run.placements
                .iter()
                .filter(|p| matches!(p, Placement::Device(_)))
                .count() as f64
        };
        vec![
            (
                "placement_sets_differ",
                f64::from(self.placement_sets_differ()),
            ),
            (
                "uniform_matches_joules",
                f64::from(self.uniform_matches_joules()),
            ),
            ("joules_offloaded", offloaded(&self.joules)),
            ("skewed_offloaded", offloaded(&self.skewed)),
            ("joules_shifts", self.joules.shifts.len() as f64),
            ("skewed_shifts", self.skewed.shifts.len() as f64),
            ("joules_energy_j", self.joules.energy_j),
            ("uniform_energy_j", self.uniform.energy_j),
            ("skewed_energy_j", self.skewed.energy_j),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_dollar_degenerates_to_joules_bit_for_bit() {
        let report = EconomicsRig::report();
        assert!(report.uniform_matches_joules());
        assert_eq!(
            report.uniform.energy_j.to_bits(),
            report.joules.energy_j.to_bits()
        );
    }

    #[test]
    fn skewed_tariff_changes_the_placement_set() {
        let report = EconomicsRig::report();
        assert!(report.placement_sets_differ());
        // The analytics tenant's near-spill is what the byte tariff
        // prices out: offloaded under joules, in software under the
        // skewed dollar, while the home-resident anchors stay put.
        assert!(matches!(
            report.joules.placements[PodFabricRig::ANA_APP],
            Placement::Device(_)
        ));
        assert_eq!(
            report.skewed.placements[PodFabricRig::ANA_APP],
            Placement::Software
        );
        assert_eq!(
            report.joules.placements[PodFabricRig::KVS_APP],
            report.skewed.placements[PodFabricRig::KVS_APP]
        );
    }
}
