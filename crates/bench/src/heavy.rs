//! Heavy-traffic trace replay: millions of requests through the
//! [`HierarchicalController`] on [`MegaFabricRig`]'s 128-device
//! fat-tree, in two measurement modes that produce **bit-identical
//! telemetry** but very different costs.
//!
//! The rig grounds its load in the three trace generators:
//!
//! * **google** — per-tenant occupancy factors derived from a
//!   synthesized cluster trace's candidate-core occupancy per 5-minute
//!   window (the §9.3 dilution structure), stretched over the run;
//! * **dynamo** — a per-tenant [`PowerWalk`] modulates offered rate
//!   every interval, so load varies the way the published rack traces
//!   do and placement decisions keep firing;
//! * **etc** — a per-tenant ETC sample per interval sets the service
//!   component of request latency from the published value-size
//!   distribution.
//!
//! The two [`ReplayMode`]s share every random draw (per-tenant dedicated
//! generators), so the per-interval observations fed to the controller —
//! and therefore every placement decision, power figure and latency
//! quantile — are identical. What differs is the machinery:
//!
//! * [`ReplayMode::PerEventRows`] — the pre-refactor baseline: every
//!   request is a simulator event delivered to a sink node, and the
//!   timeline retains every row ([`RowLog::Full`]);
//! * [`ReplayMode::StreamingBatched`] — requests are drawn in a tight
//!   batched loop at probe time (no per-request events) and the
//!   timeline keeps O(1) streaming aggregates plus a bounded row ring
//!   ([`RowLog::Recent`]).
//!
//! The ratio of simulated requests per wall-clock second between the two
//! is the headline `heavy_traffic` metric.

use inc_hw::{DeviceFabric, DeviceId, Placement, ProgramResources};
use inc_ondemand::{
    run_fleet_controlled_with, AppObservation, ArbiterConfig, ArbitrationMode, FleetApp,
    FleetControllerConfig, FleetSample, FleetTimeline, HierarchicalController, HostSample,
    PlacementAnalysis, RowLog,
};
use inc_power::EnergyParams;
use inc_sim::{impl_node_any, Ctx, Histogram, Nanos, Node, NodeId, PortId, Rng, Simulator};
use inc_workloads::dynamo::PowerWalk;
use inc_workloads::{EtcWorkload, GoogleTrace, WorkloadClass, Zipf};

use crate::rigs::MegaFabricRig;

/// How the replay turns requests into telemetry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplayMode {
    /// One simulator event per request, full row log — the
    /// pre-refactor measurement plane.
    PerEventRows,
    /// Batched per-interval draws, streaming aggregates, bounded row
    /// ring — the refactored plane.
    StreamingBatched,
}

/// Rows retained per tenant in [`ReplayMode::StreamingBatched`].
const RECENT_ROWS: usize = 32;

/// Request latency jitter mask (0..=2047 ns added per request).
const JITTER_MASK: u64 = 0x7ff;

/// Baseline software-path request latency, nanoseconds.
const SW_LATENCY_NS: u64 = 13_000;

/// Hardware-path request latency before the topology detour.
const HW_LATENCY_NS: u64 = 1_400;

/// Per-request events are delivered to the sink with the tenant index in
/// the payload's high bits and the drawn latency below.
const TENANT_SHIFT: u32 = 48;

/// The sink node of the per-event baseline: records each request's
/// latency into its tenant's interval histogram.
struct HeavySink {
    hists: Vec<Histogram>,
}

impl Node<u64> for HeavySink {
    fn on_message(&mut self, _ctx: &mut Ctx<'_, u64>, _port: PortId, msg: u64) {
        let tenant = (msg >> TENANT_SHIFT) as usize;
        self.hists[tenant].record(msg & ((1u64 << TENANT_SHIFT) - 1));
    }
    impl_node_any!();
}

/// The per-interval load of one tenant, computed one interval ahead of
/// its telemetry (the baseline injects the events before the interval
/// runs).
#[derive(Clone, Copy, Debug, Default)]
struct IntervalLoad {
    rate_pps: f64,
    requests: u64,
    base_latency_ns: u64,
}

/// The outcome of one replay run.
#[derive(Debug)]
pub struct HeavyReport {
    /// The recorded fleet timeline (per-tenant [`RowLog`] per mode).
    pub timeline: FleetTimeline,
    /// Total simulated requests (sum of per-row `completed`).
    pub requests: u64,
    /// Simulator events processed (≈ requests + timers in the
    /// per-event mode, ~0 in streaming mode).
    pub events_processed: u64,
    /// Timeline rows held in memory at the end, across tenants.
    pub retained_rows: usize,
    /// Timeline rows ever recorded, across tenants.
    pub total_rows: u64,
}

impl HeavyReport {
    /// Bytes of row storage retained at the end of the run — the memory
    /// proxy of the acceptance criterion (streaming mode keeps this
    /// constant in run length).
    pub fn retained_row_bytes(&self) -> usize {
        self.retained_rows * std::mem::size_of::<inc_ondemand::TimelineRow>()
    }
}

/// The heavy-traffic replay rig. Construction is deterministic in
/// `(tenants, seed)`; [`HeavyTrafficRig::run`] is deterministic per
/// mode, and both modes produce bit-identical telemetry.
pub struct HeavyTrafficRig {
    apps: Vec<FleetApp>,
    /// Steady offered rate per tenant, packets/second.
    base: Vec<f64>,
    /// google occupancy factor per tenant per trace window.
    google_factor: Vec<Vec<f64>>,
    seed: u64,
    /// Sampling interval of the control loop.
    interval: Nanos,
}

impl HeavyTrafficRig {
    /// Zipf exponent of the tenant rate ranking (the [`MegaFabricRig`]
    /// fleet regime).
    pub const ALPHA: f64 = MegaFabricRig::ALPHA;

    /// Offered rate of the rank-1 tenant, packets/second.
    pub const PEAK_PPS: f64 = 60_000.0;

    /// Rate floor of the coldest tenant, packets/second.
    pub const FLOOR_PPS: f64 = 2_000.0;

    /// Builds `tenants` tenants over the [`MegaFabricRig`] fat-tree,
    /// with rates ranked by a shuffled zipf popularity curve and
    /// occupancy factors mined from a synthesized google cluster trace
    /// (one trace "node" per tenant).
    pub fn new(tenants: usize, seed: u64) -> Self {
        let mut rng = Rng::new(seed);
        let zipf = Zipf::new(tenants as u64, Self::ALPHA).expect("valid zipf parameters");
        let mut ranks: Vec<u64> = (1..=tenants as u64).collect();
        rng.shuffle(&mut ranks);
        let mut apps = Vec::with_capacity(tenants);
        let mut base = Vec::with_capacity(tenants);
        for (i, &rank) in ranks.iter().enumerate() {
            let stages = 2 + rng.index(3) as u32;
            let sram_mb = 1 + rng.index(4) as u64;
            let slope = 0.08 + 0.04 * rng.f64(); // W per kpps
            apps.push(FleetApp {
                name: format!("tenant{i}"),
                demand: ProgramResources {
                    stages,
                    sram_bytes: sram_mb << 20,
                    parse_depth_bytes: 64,
                },
                analysis: PlacementAnalysis {
                    software: EnergyParams {
                        idle_w: 50.0,
                        sleep_w: 0.0,
                        active_w: 50.0 + slope * 1_000.0,
                        peak_rate_pps: 1_000_000.0,
                    },
                    network: EnergyParams {
                        idle_w: 52.0,
                        sleep_w: 0.0,
                        active_w: 52.1,
                        peak_rate_pps: 10_000_000.0,
                    },
                },
                home: DeviceId((i % MegaFabricRig::DEVICES) as u16),
                weight: 1.0,
            });
            base.push(Self::FLOOR_PPS + Self::PEAK_PPS * zipf.popularity(rank));
        }

        // The google structure: candidate-core occupancy per (tenant,
        // 5-minute window), normalised to a bounded rate factor. The
        // trace horizon is stretched over the replay, so a run of any
        // length walks the same diurnal-ish occupancy shape.
        let trace =
            GoogleTrace::synthesize(&mut rng, tenants as u32, Nanos::from_secs(24 * 3600), 200);
        let window = Nanos::from_secs(300);
        let windows = (trace.horizon.as_nanos() / window.as_nanos()) as usize;
        let mut cores = vec![vec![0.0f64; windows]; tenants];
        for t in trace.offload_candidates_iter(0.10, Nanos::from_secs(300)) {
            let first = (t.start.as_nanos() / window.as_nanos()) as usize;
            let last = ((t.start + t.duration).as_nanos() / window.as_nanos()) as usize;
            for c in &mut cores[t.node as usize][first..=last.min(windows - 1)] {
                *c += t.cpu_cores;
            }
        }
        let google_factor = cores
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|c| (0.5 + c / 15.0).clamp(0.5, 1.5))
                    .collect()
            })
            .collect();

        HeavyTrafficRig {
            apps,
            base,
            google_factor,
            seed,
            interval: Nanos::from_millis(100),
        }
    }

    /// Number of tenants.
    pub fn tenants(&self) -> usize {
        self.apps.len()
    }

    /// The control-loop sampling interval.
    pub fn interval(&self) -> Nanos {
        self.interval
    }

    /// A hierarchical controller (incremental mode, 5 % dead band) over
    /// the [`MegaFabricRig`] fabric — whose detour prices are calibrated
    /// from the §9.4 switch model, see
    /// [`MegaFabricRig::fabric`] — and this rig's tenants.
    pub fn controller(&self) -> HierarchicalController {
        HierarchicalController::new(
            ArbiterConfig {
                fleet: FleetControllerConfig::standard(self.interval),
                mode: ArbitrationMode::Incremental,
                rate_deadband: 0.05,
            },
            MegaFabricRig::fabric(),
            self.apps.clone(),
        )
    }

    /// Computes interval `k`'s load for every tenant: the zipf base rate
    /// times the google occupancy factor for the stretched window times
    /// the dynamo walk level, and the latency base from the current
    /// placement plus an ETC value-size service component. Draws only
    /// from `load_rngs` (one per tenant), so both modes advance them
    /// identically.
    #[allow(clippy::too_many_arguments)]
    fn interval_loads(
        &self,
        k: u64,
        total_intervals: u64,
        fabric: &DeviceFabric,
        placements: &[Placement],
        walks: &mut [PowerWalk],
        etcs: &mut [EtcWorkload],
        load_rngs: &mut [Rng],
        out: &mut [IntervalLoad],
    ) {
        let windows = self.google_factor[0].len() as u64;
        let w = ((k.saturating_sub(1)) * windows / total_intervals.max(1)) as usize;
        let dt = self.interval.as_secs_f64();
        for i in 0..self.apps.len() {
            let rng = &mut load_rngs[i];
            let dyn_factor = walks[i].next_w(rng) / walks[i].mean_w();
            let rate = self.base[i]
                * self.google_factor[i][w.min(self.google_factor[i].len() - 1)]
                * dyn_factor;
            let etc_sample = etcs[i].next_sample(rng);
            let service_ns = (etc_sample.value_len as u64) / 4;
            let base_latency_ns = match placements[i] {
                Placement::Software => SW_LATENCY_NS + service_ns,
                Placement::Device(d) => {
                    HW_LATENCY_NS
                        + 2 * fabric.extra_latency(self.apps[i].home, d).as_nanos()
                        + service_ns
                }
            };
            out[i] = IntervalLoad {
                rate_pps: rate,
                requests: (rate * dt) as u64,
                base_latency_ns,
            };
        }
    }

    /// Replays `intervals` sampling intervals in the given mode and
    /// returns the recorded timeline plus the throughput/memory
    /// counters. Telemetry is bit-identical across modes.
    pub fn run(&self, mode: ReplayMode, intervals: u64) -> HeavyReport {
        let n = self.tenants();
        let fabric = MegaFabricRig::fabric();
        let mut controller = self.controller();
        let mut sim: Simulator<u64> = Simulator::new(self.seed);
        let sink = sim.add_node(HeavySink {
            hists: vec![Histogram::new(); n],
        });

        // Per-tenant dedicated generators: load draws (walk + etc) and
        // latency draws never interleave across tenants or modes.
        let mut load_rngs: Vec<Rng> = (0..n)
            .map(|i| Rng::new(self.seed ^ (0x5eed + i as u64)))
            .collect();
        let mut lat_rngs: Vec<Rng> = (0..n)
            .map(|i| Rng::new(self.seed ^ (0xfeed + i as u64)))
            .collect();
        let mut walks = vec![PowerWalk::new(WorkloadClass::Cache); n];
        let mut etcs: Vec<EtcWorkload> = (0..n).map(|_| EtcWorkload::new(1 << 20)).collect();
        // Streaming mode records into its own scratch histograms (the
        // baseline's live in the sink node).
        let mut scratch: Vec<Histogram> = vec![Histogram::new(); n];
        let mut cur = vec![IntervalLoad::default(); n];

        let placements = std::cell::RefCell::new(vec![Placement::Software; n]);
        let row_log = match mode {
            ReplayMode::PerEventRows => RowLog::Full,
            ReplayMode::StreamingBatched => RowLog::Recent(RECENT_ROWS),
        };

        // Interval 1's load (and, in the baseline, its event burst) must
        // exist before the harness first advances the simulator.
        self.interval_loads(
            1,
            intervals,
            &fabric,
            &placements.borrow(),
            &mut walks,
            &mut etcs,
            &mut load_rngs,
            &mut cur,
        );
        if mode == ReplayMode::PerEventRows {
            inject_interval(&mut sim, sink, self.interval, &cur, &mut lat_rngs);
        }

        let mut interval_idx = 0u64;
        let until = self.interval.mul(intervals);
        let timeline = run_fleet_controlled_with(
            &mut sim,
            &mut controller,
            until,
            row_log,
            |sim| {
                interval_idx += 1;
                // 1. Interval telemetry: the baseline's sink histograms
                //    filled as the events fired; streaming mode draws the
                //    same latencies in one tight batch now.
                if mode == ReplayMode::StreamingBatched {
                    for (i, load) in cur.iter().enumerate() {
                        let rng = &mut lat_rngs[i];
                        let hist = &mut scratch[i];
                        for _ in 0..load.requests {
                            hist.record(load.base_latency_ns + (rng.next_u64() & JITTER_MASK));
                        }
                    }
                }
                let hists: &mut Vec<Histogram> = match mode {
                    ReplayMode::PerEventRows => &mut sim.node_mut::<HeavySink>(sink).hists,
                    ReplayMode::StreamingBatched => &mut scratch,
                };
                let obs: Vec<AppObservation> = (0..n)
                    .map(|i| {
                        let load = &cur[i];
                        let hist = &mut hists[i];
                        debug_assert_eq!(hist.count(), load.requests, "tenant {i} lost requests");
                        let (p50, p99) = if hist.count() > 0 {
                            (hist.quantile(0.5), hist.quantile(0.99))
                        } else {
                            (0, 0)
                        };
                        hist.clear();
                        let placement = placements.borrow()[i];
                        let (sw_w, hw_w) = self.apps[i].analysis.energy_per_second(load.rate_pps);
                        let power_w = match placement {
                            Placement::Software => sw_w,
                            Placement::Device(d) => {
                                let f = fabric.benefit_factor(self.apps[i].home, d);
                                let link_w =
                                    fabric.link_energy_w(self.apps[i].home, d, load.rate_pps);
                                sw_w - f * (sw_w - hw_w) + link_w
                            }
                        };
                        AppObservation {
                            sample: FleetSample {
                                host: HostSample {
                                    rapl_w: sw_w,
                                    app_cpu_util: load.rate_pps / 1e6,
                                    hw_app_rate: if placement.is_offloaded() {
                                        load.rate_pps
                                    } else {
                                        0.0
                                    },
                                },
                                offered_pps: load.rate_pps,
                            },
                            completed: load.requests,
                            latency_p50_ns: p50,
                            latency_p99_ns: p99,
                            power_w,
                        }
                    })
                    .collect();
                // 2. Next interval's load (same draws in both modes),
                //    and in the baseline its event burst.
                if interval_idx < intervals {
                    self.interval_loads(
                        interval_idx + 1,
                        intervals,
                        &fabric,
                        &placements.borrow(),
                        &mut walks,
                        &mut etcs,
                        &mut load_rngs,
                        &mut cur,
                    );
                    if mode == ReplayMode::PerEventRows {
                        inject_interval(sim, sink, self.interval, &cur, &mut lat_rngs);
                    }
                }
                obs
            },
            |_sim, _t, app, p| placements.borrow_mut()[app] = p,
        );

        let requests = timeline.per_app.iter().map(|t| t.total_completed()).sum();
        let retained_rows = timeline.per_app.iter().map(|t| t.retained_rows()).sum();
        let total_rows = timeline.per_app.iter().map(|t| t.total_rows()).sum();
        HeavyReport {
            timeline,
            requests,
            events_processed: sim.events_processed(),
            retained_rows,
            total_rows,
        }
    }
}

/// Injects one interval's request burst: per tenant, `requests` events
/// spread evenly over the coming interval, each carrying its pre-drawn
/// latency (tenant in the payload high bits). Draw order matches the
/// streaming mode's batch loop exactly.
fn inject_interval(
    sim: &mut Simulator<u64>,
    sink: NodeId,
    interval: Nanos,
    loads: &[IntervalLoad],
    lat_rngs: &mut [Rng],
) {
    let span = interval.as_nanos();
    for (i, load) in loads.iter().enumerate() {
        let rng = &mut lat_rngs[i];
        let requests = load.requests;
        if requests == 0 {
            continue;
        }
        let tenant_tag = (i as u64) << TENANT_SHIFT;
        let base = load.base_latency_ns;
        sim.inject_batch(
            sink,
            PortId::P0,
            (0..requests).map(|j| {
                let at = Nanos::from_nanos(1 + j * span / (requests + 1));
                let latency = base + (rng.next_u64() & JITTER_MASK);
                (at, tenant_tag | latency)
            }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline equivalence: both replay modes produce the same
    /// decisions and bit-identical full-span telemetry, while streaming
    /// mode holds a bounded number of rows.
    #[test]
    fn modes_agree_bit_for_bit_and_streaming_is_bounded() {
        let rig = HeavyTrafficRig::new(6, 42);
        let intervals = 120;
        let baseline = rig.run(ReplayMode::PerEventRows, intervals);
        let streaming = rig.run(ReplayMode::StreamingBatched, intervals);

        assert_eq!(baseline.requests, streaming.requests);
        assert!(
            baseline.requests > 100_000,
            "{} requests",
            baseline.requests
        );
        // The baseline pushed one event per request through the heap;
        // streaming mode pushed none.
        assert!(baseline.events_processed >= baseline.requests);
        assert!(streaming.events_processed < intervals);

        let (bt, st) = (&baseline.timeline, &streaming.timeline);
        assert_eq!(bt.energy_j.to_bits(), st.energy_j.to_bits());
        assert_eq!(bt.shifts.len(), st.shifts.len());
        for (a, b) in bt.shifts.iter().zip(&st.shifts) {
            assert_eq!(a, b);
        }
        assert_eq!(bt.queued_intervals, st.queued_intervals);
        let span = (Nanos::ZERO, rig.interval().mul(intervals + 1));
        for (i, (full, recent)) in bt.per_app.iter().zip(&st.per_app).enumerate() {
            assert_eq!(full.total_rows(), intervals, "tenant {i}");
            assert_eq!(recent.total_rows(), intervals, "tenant {i}");
            assert_eq!(full.retained_rows() as u64, intervals);
            assert!(recent.retained_rows() <= 2 * RECENT_ROWS, "tenant {i}");
            assert_eq!(
                full.energy_j().to_bits(),
                recent.energy_j().to_bits(),
                "tenant {i}"
            );
            assert_eq!(
                full.mean_power_w(span.0, span.1).unwrap().to_bits(),
                recent.mean_power_w(span.0, span.1).unwrap().to_bits(),
                "tenant {i}"
            );
            assert_eq!(
                full.mean_throughput_pps(span.0, span.1).unwrap().to_bits(),
                recent
                    .mean_throughput_pps(span.0, span.1)
                    .unwrap()
                    .to_bits(),
                "tenant {i}"
            );
            // Median: exact selection vs quantile sketch, within the
            // sketch's 1/32 bucket resolution.
            let exact = full.median_latency_ns(span.0, span.1).unwrap();
            let sketch = recent.median_latency_ns(span.0, span.1).unwrap();
            assert!(sketch >= exact.saturating_sub(exact / 32 + 1), "tenant {i}");
            assert!(sketch <= exact + exact / 32 + 1, "tenant {i}");
        }
    }

    /// Streaming-mode memory is O(1) in run length: doubling the run
    /// does not grow the retained rows.
    #[test]
    fn streaming_memory_is_constant_in_run_length() {
        let rig = HeavyTrafficRig::new(4, 7);
        let short = rig.run(ReplayMode::StreamingBatched, 80);
        let long = rig.run(ReplayMode::StreamingBatched, 160);
        assert_eq!(long.total_rows, 2 * short.total_rows);
        assert!(long.retained_rows <= 4 * 2 * RECENT_ROWS);
        assert!(long.retained_row_bytes() <= short.retained_row_bytes() * 2);
        // Not an empty claim: the same doubling in full-log mode doubles
        // retention.
        let full_short = rig.run(ReplayMode::PerEventRows, 80);
        let full_long = rig.run(ReplayMode::PerEventRows, 160);
        assert_eq!(full_long.retained_rows, 2 * full_short.retained_rows);
    }

    /// Replays are deterministic per mode.
    #[test]
    fn replay_is_deterministic() {
        let rig = HeavyTrafficRig::new(3, 11);
        let a = rig.run(ReplayMode::StreamingBatched, 50);
        let b = rig.run(ReplayMode::StreamingBatched, 50);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.timeline.energy_j.to_bits(), b.timeline.energy_j.to_bits());
    }
}
