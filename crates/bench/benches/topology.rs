//! Topology-aware scheduling benchmarks: the (app × device) decision
//! path over a three-tier distance matrix — tier lookups, migration
//! debits and min-cost hand-over planning must stay cheap next to the
//! flat-penalty knapsack — plus a short pod-fabric run under the full
//! fleet control loop.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use inc_bench::rigs::PodFabricRig;
use inc_hw::{DeviceFabric, DeviceId, PipelineBudget, ProgramResources, TierCost, Topology};
use inc_ondemand::{
    ClaimPolicy, FleetApp, FleetController, FleetControllerConfig, FleetSample, HostSample,
    PlacementAnalysis,
};
use inc_power::EnergyParams;
use inc_power::LinkEnergyModel;
use inc_sim::Nanos;

fn sample(rate: f64) -> FleetSample {
    FleetSample {
        host: HostSample {
            rapl_w: 45.0,
            app_cpu_util: rate / 1e6,
            hw_app_rate: rate,
        },
        offered_pps: rate,
    }
}

/// A contended pod fabric at parametric scale: `pods × 2` ToRs with
/// tiered costs, `n` tenants striped across the big ToRs so spills,
/// claims and migration pricing all fire continuously.
fn pod_fleet(n: usize, pods: usize, claim_policy: ClaimPolicy) -> FleetController {
    let analysis = |slope_per_kpps: f64| PlacementAnalysis {
        software: EnergyParams {
            idle_w: 40.0,
            sleep_w: 0.0,
            active_w: 40.0 + slope_per_kpps * 1_000.0,
            peak_rate_pps: 1_000_000.0,
        },
        network: EnergyParams {
            idle_w: 42.0,
            sleep_w: 0.0,
            active_w: 42.1,
            peak_rate_pps: 10_000_000.0,
        },
    };
    let apps: Vec<FleetApp> = (0..n)
        .map(|i| FleetApp {
            name: format!("tenant-{i}"),
            demand: ProgramResources {
                stages: 5 + (i as u32 % 3),
                sram_bytes: (8 + i as u64 % 9) << 20,
                parse_depth_bytes: 64,
            },
            analysis: analysis(0.05 + 0.02 * i as f64),
            home: DeviceId((2 * (i % pods)) as u16),
            weight: 1.0 + (i % 3) as f64,
        })
        .collect();
    let config = FleetControllerConfig {
        starvation_window: 8,
        claim_policy,
        ..FleetControllerConfig::standard(Nanos::from_millis(1))
    };
    let link = LinkEnergyModel::arista_class();
    let intra = TierCost::calibrated_intra_pod(&link);
    let inter = TierCost::calibrated_inter_pod(&link);
    FleetController::new(
        config,
        DeviceFabric::homogeneous(
            2 * pods,
            PipelineBudget::tofino_like(),
            Topology::fat_tree(pods, 2, intra, inter),
        ),
        apps,
    )
}

fn bench_topology(c: &mut Criterion) {
    let mut g = c.benchmark_group("topology");

    // The decision path over the distance matrix, at the rig's scale
    // (5 tenants, 2 pods) and at a row scale (12 tenants, 4 pods).
    // Everyone stays hot, so every starvation window triggers a
    // min-cost hand-over plan across all devices — the worst case for
    // the planning pass.
    for (apps, pods) in [(5usize, 2usize), (12, 4)] {
        let name = format!("tiered_decisions_{apps}apps_{pods}pods_x10k");
        g.bench_function(&name, |bench| {
            bench.iter(|| {
                let mut ctl = pod_fleet(apps, pods, ClaimPolicy::MinCost);
                let n = ctl.apps().len();
                let mut shifts = 0usize;
                for step in 1..=10_000u64 {
                    let samples: Vec<FleetSample> = (0..n).map(|_| sample(120_000.0)).collect();
                    shifts += ctl.sample(Nanos::from_millis(step), &samples).len();
                }
                black_box(shifts)
            })
        });
    }

    // The old best-score claim policy on the same fleet: the marginal
    // cost of min-cost planning is the delta against this baseline.
    g.bench_function("best_score_decisions_5apps_2pods_x10k", |bench| {
        bench.iter(|| {
            let mut ctl = pod_fleet(5, 2, ClaimPolicy::BestScore);
            let n = ctl.apps().len();
            let mut shifts = 0usize;
            for step in 1..=10_000u64 {
                let samples: Vec<FleetSample> = (0..n).map(|_| sample(120_000.0)).collect();
                shifts += ctl.sample(Nanos::from_millis(step), &samples).len();
            }
            black_box(shifts)
        })
    });

    // One short contended window of the model-driven five-tenant rig
    // under the full fleet control loop (near spills, migration-priced
    // moves, min-cost claims).
    g.bench_function("pod_fabric_run_2s_five_tenants", |bench| {
        bench.iter(|| {
            let horizon = Nanos::from_secs(2);
            let rig = PodFabricRig::new(PodFabricRig::contended_profiles(horizon));
            let mut ctl =
                PodFabricRig::fleet_controller(Nanos::from_millis(25), ClaimPolicy::MinCost);
            let timeline = rig.run(&mut ctl, horizon);
            black_box(timeline.energy_j)
        })
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);
    targets = bench_topology
}
criterion_main!(benches);
