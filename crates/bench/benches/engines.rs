//! Engine micro-benchmarks: the cache, sampling, and consensus state
//! machines at the heart of the applications.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use inc_kvs::{LakeCache, LakeCacheConfig, LruCache};
use inc_paxos::{Acceptor, AcceptorStorage, Leader, Learner, MsgType, PaxosMsg};
use inc_sim::{Histogram, Rng};
use inc_workloads::Zipf;

fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("engines");

    // LRU cache hit path.
    let mut lru = LruCache::new(4096);
    for i in 0..4096u32 {
        lru.insert(i.to_be_bytes().to_vec(), vec![0u8; 64]);
    }
    let mut i = 0u32;
    g.bench_function("lru_get_hit", |bench| {
        bench.iter(|| {
            i = (i + 1) & 4095;
            black_box(lru.get(&i.to_be_bytes()).map(|v| v.len()))
        })
    });

    // LaKe two-level lookup with L1 promotion.
    let mut lake = LakeCache::new(LakeCacheConfig::tiny(256, 4096));
    for i in 0..4096u32 {
        lake.warm(i.to_be_bytes().to_vec(), vec![0u8; 64], 0);
    }
    let mut j = 0u32;
    g.bench_function("lake_get", |bench| {
        bench.iter(|| {
            j = (j + 1) & 4095;
            black_box(lake.get(&j.to_be_bytes()))
        })
    });

    // Zipf sampling (rejection-inversion, O(1)).
    let zipf = Zipf::new(1_000_000_000, 0.99).unwrap();
    let mut rng = Rng::new(1);
    g.bench_function("zipf_sample_1e9", |bench| {
        bench.iter(|| black_box(zipf.sample(&mut rng)))
    });

    // Histogram recording.
    let mut h = Histogram::new();
    let mut k = 1u64;
    g.bench_function("histogram_record", |bench| {
        bench.iter(|| {
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(black_box(k >> 40));
        })
    });

    // One full Paxos round through the three role engines (3 acceptors).
    g.bench_function("paxos_full_round", |bench| {
        let mut leader = Leader::bootstrap(1, 3);
        let mut accs: Vec<_> = (0..3)
            .map(|i| Acceptor::new(i, AcceptorStorage::unbounded()))
            .collect();
        let mut learner = Learner::new(3);
        let value = vec![0u8; 32];
        bench.iter(|| {
            let req = PaxosMsg::new(MsgType::ClientRequest, 0, 0, value.clone());
            for (_, m2a) in leader.handle(&req) {
                for acc in accs.iter_mut() {
                    for (_, m2b) in acc.handle(&m2a) {
                        black_box(learner.handle(&m2b));
                    }
                }
            }
        })
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(30);
    targets = bench_engines
}
criterion_main!(benches);
