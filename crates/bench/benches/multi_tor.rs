//! Multi-ToR fabric scheduling benchmarks: the (app × device) decision
//! path in isolation — the knapsack must stay cheap as both the tenant
//! count and the fabric width grow — and the full three-tenant two-ToR
//! simulation under the fleet control loop.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use inc_bench::rigs::MultiTorRig;
use inc_hw::{DeviceFabric, DeviceId, PipelineBudget, ProgramResources, TierCost, Topology};
use inc_ondemand::{
    FleetApp, FleetController, FleetControllerConfig, FleetSample, HostSample, PlacementAnalysis,
};
use inc_power::EnergyParams;
use inc_sim::Nanos;

fn sample(rate: f64) -> FleetSample {
    FleetSample {
        host: HostSample {
            rapl_w: 45.0,
            app_cpu_util: rate / 1e6,
            hw_app_rate: rate,
        },
        offered_pps: rate,
    }
}

/// A synthetic fleet of `n` tenants striped across `tors` home devices.
fn synthetic_fleet(n: usize, tors: usize) -> FleetController {
    let analysis = |slope_per_kpps: f64| PlacementAnalysis {
        software: EnergyParams {
            idle_w: 40.0,
            sleep_w: 0.0,
            active_w: 40.0 + slope_per_kpps * 1_000.0,
            peak_rate_pps: 1_000_000.0,
        },
        network: EnergyParams {
            idle_w: 42.0,
            sleep_w: 0.0,
            active_w: 42.1,
            peak_rate_pps: 10_000_000.0,
        },
    };
    let apps = (0..n)
        .map(|i| FleetApp {
            name: format!("tenant-{i}"),
            demand: ProgramResources {
                stages: 3 + (i as u32 % 5),
                sram_bytes: (2 + i as u64 % 7) << 20,
                parse_depth_bytes: 64,
            },
            analysis: analysis(0.05 + 0.01 * i as f64),
            home: DeviceId((i % tors) as u16),
            weight: 1.0,
        })
        .collect();
    FleetController::new(
        FleetControllerConfig::standard(Nanos::from_millis(1)),
        DeviceFabric::homogeneous(
            tors,
            PipelineBudget::tofino_like(),
            Topology::fat_tree(
                1,
                tors,
                TierCost::standard_intra_pod(),
                TierCost::standard_inter_pod(),
            ),
        ),
        apps,
    )
}

fn bench_multi_tor(c: &mut Criterion) {
    let mut g = c.benchmark_group("multi_tor");

    // The controller's per-interval (app × device) decision path alone,
    // at the rig's scale (3 tenants, 2 ToRs) and at a rack-row scale
    // (12 tenants, 4 ToRs). Alternating bursts keep the streak machines
    // and the knapsack busy.
    for (apps, tors) in [(3usize, 2usize), (12, 4)] {
        let name = format!("decisions_{apps}apps_{tors}tors_x10k");
        g.bench_function(&name, |bench| {
            bench.iter(|| {
                let mut ctl = synthetic_fleet(apps, tors);
                let mut shifts = 0usize;
                for step in 1..=10_000u64 {
                    let phase = (step / 100) % 2 == 0;
                    let samples: Vec<FleetSample> = (0..apps)
                        .map(|i| {
                            let hot = (i % 2 == 0) == phase;
                            sample(if hot { 120_000.0 } else { 3_000.0 })
                        })
                        .collect();
                    shifts += ctl.sample(Nanos::from_millis(step), &samples).len();
                }
                black_box(shifts)
            })
        });
    }

    // One short contended window of the full three-tenant, two-ToR
    // packet-level simulation under the fleet control loop.
    g.bench_function("fleet_run_400ms_three_tenants_two_tors", |bench| {
        bench.iter(|| {
            let period = Nanos::from_millis(800);
            let mut rig = MultiTorRig::new(7, 256, 256, MultiTorRig::contended_profiles(period));
            let mut ctl = MultiTorRig::fleet_controller(Nanos::from_millis(50));
            let timeline = rig.run(&mut ctl, Nanos::from_millis(400));
            black_box(timeline.energy_j)
        })
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);
    targets = bench_multi_tor
}
criterion_main!(benches);
