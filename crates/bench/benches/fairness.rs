//! Weighted-DRF arbitration benchmarks: the fairness-augmented decision
//! path in isolation — the starvation accounting, claim/clip pass and
//! admission checks must stay cheap next to the plain knapsack — and a
//! short contended-fabric run under the full fleet control loop.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use inc_bench::rigs::ContendedFabricRig;
use inc_hw::{CrossTorPenalty, DeviceFabric, DeviceId, PipelineBudget, ProgramResources};
use inc_ondemand::{
    FleetApp, FleetController, FleetControllerConfig, FleetSample, HostSample, PlacementAnalysis,
};
use inc_power::EnergyParams;
use inc_sim::Nanos;

fn sample(rate: f64) -> FleetSample {
    FleetSample {
        host: HostSample {
            rapl_w: 45.0,
            app_cpu_util: rate / 1e6,
            hw_app_rate: rate,
        },
        offered_pps: rate,
    }
}

/// A synthetic contended fleet: `n` tenants striped across `tors` home
/// devices with descending weights, everyone hot all the time, plus one
/// unsatisfiable tenant exercising the admission-reject path. Demands
/// are sized so roughly two tenants fill a device — sustained queues,
/// claims and clips every starvation window.
fn contended_fleet(n: usize, tors: usize, starvation_window: u32) -> FleetController {
    let analysis = |slope_per_kpps: f64| PlacementAnalysis {
        software: EnergyParams {
            idle_w: 40.0,
            sleep_w: 0.0,
            active_w: 40.0 + slope_per_kpps * 1_000.0,
            peak_rate_pps: 1_000_000.0,
        },
        network: EnergyParams {
            idle_w: 42.0,
            sleep_w: 0.0,
            active_w: 42.1,
            peak_rate_pps: 10_000_000.0,
        },
    };
    let mut apps: Vec<FleetApp> = (0..n)
        .map(|i| FleetApp {
            name: format!("tenant-{i}"),
            demand: ProgramResources {
                stages: 5 + (i as u32 % 3),
                sram_bytes: (8 + i as u64 % 9) << 20,
                parse_depth_bytes: 64,
            },
            analysis: analysis(0.05 + 0.02 * i as f64),
            home: DeviceId((i % tors) as u16),
            weight: 1.0 + (i % 3) as f64,
        })
        .collect();
    apps.push(FleetApp {
        name: "unsatisfiable".into(),
        demand: ProgramResources {
            stages: 20,
            sram_bytes: 64 << 20,
            parse_depth_bytes: 64,
        },
        analysis: analysis(0.10),
        home: DeviceId(0),
        weight: 1.0,
    });
    let config = FleetControllerConfig {
        starvation_window,
        ..FleetControllerConfig::standard(Nanos::from_millis(1))
    };
    FleetController::new(
        config,
        DeviceFabric::homogeneous(
            tors,
            PipelineBudget::tofino_like(),
            CrossTorPenalty::standard(),
        ),
        apps,
    )
}

fn bench_fairness(c: &mut Criterion) {
    let mut g = c.benchmark_group("fairness");

    // The decision path with the fairness machinery active, at the
    // rig's scale and at a rack-row scale. Everyone stays hot, so every
    // starvation window triggers a claim/clip cycle — the worst case
    // for the arbitration layer.
    for (apps, tors) in [(4usize, 2usize), (12, 4)] {
        let name = format!("drf_decisions_{apps}apps_{tors}tors_x10k");
        g.bench_function(&name, |bench| {
            bench.iter(|| {
                let mut ctl = contended_fleet(apps, tors, 8);
                let n = ctl.apps().len();
                let mut shifts = 0usize;
                for step in 1..=10_000u64 {
                    let samples: Vec<FleetSample> = (0..n).map(|_| sample(120_000.0)).collect();
                    shifts += ctl.sample(Nanos::from_millis(step), &samples).len();
                }
                black_box(shifts)
            })
        });
    }

    // The same fleet with fairness disabled: the cost of the layer is
    // the delta against this baseline.
    g.bench_function("pure_benefit_decisions_4apps_2tors_x10k", |bench| {
        bench.iter(|| {
            let mut ctl = contended_fleet(4, 2, u32::MAX);
            let n = ctl.apps().len();
            let mut shifts = 0usize;
            for step in 1..=10_000u64 {
                let samples: Vec<FleetSample> = (0..n).map(|_| sample(120_000.0)).collect();
                shifts += ctl.sample(Nanos::from_millis(step), &samples).len();
            }
            black_box(shifts)
        })
    });

    // One short contended window of the model-driven four-tenant rig
    // under the full fleet control loop (claims, clips, rejection).
    g.bench_function("contended_fabric_run_2s_four_tenants", |bench| {
        bench.iter(|| {
            let horizon = Nanos::from_secs(2);
            let rig = ContendedFabricRig::new(ContendedFabricRig::contended_profiles(horizon));
            let mut ctl = ContendedFabricRig::fleet_controller(Nanos::from_millis(25));
            let timeline = rig.run(&mut ctl, horizon);
            black_box(timeline.energy_j)
        })
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);
    targets = bench_fairness
}
criterion_main!(benches);
