//! Multi-application shared-device scheduling benchmarks: the cost of
//! driving the fleet control loop over the full two-tenant simulation,
//! and the controller's decision path in isolation.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use inc_bench::rigs::SharedDeviceRig;
use inc_hw::Placement;
use inc_ondemand::{FleetSample, HostSample};
use inc_sim::Nanos;

fn bench_shared_device(c: &mut Criterion) {
    let mut g = c.benchmark_group("shared_device");

    // One diurnal half-cycle of the full two-tenant rig under the fleet
    // controller: measures simulation + control-loop throughput.
    g.bench_function("fleet_run_400ms_two_tenants", |bench| {
        bench.iter(|| {
            let period = Nanos::from_millis(800);
            let (kvs, dns) = SharedDeviceRig::contended_profiles(period);
            let mut rig = SharedDeviceRig::new(7, 256, 256, kvs, dns);
            let mut ctl = SharedDeviceRig::fleet_controller(Nanos::from_millis(50));
            let timeline = rig.run(&mut ctl, Nanos::from_millis(400));
            black_box(timeline.energy_j)
        })
    });

    // The static baseline at the same load, for scheduling-overhead
    // comparison.
    g.bench_function("pinned_run_400ms_two_tenants", |bench| {
        bench.iter(|| {
            let period = Nanos::from_millis(800);
            let (kvs, dns) = SharedDeviceRig::contended_profiles(period);
            let mut rig = SharedDeviceRig::new(7, 256, 256, kvs, dns);
            let mut ctl = SharedDeviceRig::pinned_controller(
                Nanos::from_millis(50),
                [Placement::HARDWARE, Placement::Software],
            );
            let timeline = rig.run(&mut ctl, Nanos::from_millis(400));
            black_box(timeline.energy_j)
        })
    });

    // The controller's per-interval decision path alone (no simulation):
    // the knapsack must be cheap enough to run every sampling interval
    // for many tenants.
    g.bench_function("fleet_controller_10k_decisions", |bench| {
        bench.iter(|| {
            let mut ctl = SharedDeviceRig::fleet_controller(Nanos::from_millis(1));
            let mut shifts = 0usize;
            for step in 1..=10_000u64 {
                // Alternating bursts keep both streak machines busy.
                let phase = (step / 100) % 2 == 0;
                let (kr, dr) = if phase {
                    (110_000.0, 3_000.0)
                } else {
                    (3_000.0, 70_000.0)
                };
                let mk = |r: f64| FleetSample {
                    host: HostSample {
                        rapl_w: 45.0,
                        app_cpu_util: r / 1e6,
                        hw_app_rate: r,
                    },
                    offered_pps: r,
                };
                shifts += ctl
                    .sample(Nanos::from_millis(step), &[mk(kr), mk(dr)])
                    .len();
            }
            black_box(shifts)
        })
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
        .sample_size(10);
    targets = bench_shared_device
}
criterion_main!(benches);
