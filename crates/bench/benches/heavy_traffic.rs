//! Heavy-traffic replay throughput curves: the per-event + full-row-log
//! measurement plane versus the streaming + batched one, on the
//! `HeavyTrafficRig` (hierarchical controller over the 128-device
//! fat-tree, google/etc/dynamo-grounded load). Both modes produce
//! bit-identical telemetry (the rig's tests pin it); the gap between
//! the curves is pure measurement-plane overhead — one heap event per
//! request plus a `TimelineRow` per interval versus a tight batched
//! draw loop over O(1) aggregates. The example's `heavy_traffic.json`
//! reports the same ratio at full scale; this bench pins the curve
//! shape at two sizes so regressions in either plane show up in CI.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use inc_bench::heavy::{HeavyTrafficRig, ReplayMode};

const SEED: u64 = 20260809;

fn bench_heavy_traffic(c: &mut Criterion) {
    let mut g = c.benchmark_group("heavy_traffic");

    for (tenants, intervals) in [(4usize, 100u64), (8, 200)] {
        let rig = HeavyTrafficRig::new(tenants, SEED);
        for (label, mode) in [
            ("per_event_rows", ReplayMode::PerEventRows),
            ("streaming_batched", ReplayMode::StreamingBatched),
        ] {
            let name = format!("{label}_{tenants}tenants_x{intervals}");
            g.bench_function(&name, |bench| {
                bench.iter(|| black_box(rig.run(mode, intervals)))
            });
        }
    }

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);
    targets = bench_heavy_traffic
}
criterion_main!(benches);
