//! Whole-simulation benchmarks: events per second through the kernel and
//! the end-to-end application rigs.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use inc_bench::rigs::{DnsRig, KvsRig, PaxosRig};
use inc_kvs::UniformGen;
use inc_sim::{impl_node_any, Ctx, LinkSpec, Nanos, Node, PortId, Simulator, Timer};

/// Two nodes bouncing a message as fast as the kernel can carry it.
struct PingPong;
impl Node<u64> for PingPong {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.schedule_in(Nanos::from_nanos(1), 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, _t: Timer) {
        ctx.send(PortId::P0, 0);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, _p: PortId, msg: u64) {
        ctx.send(PortId::P0, msg + 1);
    }
    impl_node_any!();
}

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation");

    g.bench_function("kernel_event_throughput_100k", |bench| {
        bench.iter(|| {
            let mut sim = Simulator::new(0);
            let a = sim.add_node(PingPong);
            let b = sim.add_node(PingPong);
            sim.connect_duplex(
                a,
                PortId::P0,
                b,
                PortId::P0,
                LinkSpec::with_latency(Nanos::from_nanos(100)),
            );
            // ~100k deliveries.
            sim.run_until(Nanos::from_millis(10));
            black_box(sim.events_processed())
        })
    });

    g.bench_function("kvs_rig_100ms_at_100kpps", |bench| {
        bench.iter(|| {
            let gen = Box::new(UniformGen {
                keys: 256,
                get_ratio: 1.0,
                value_len: 64,
            });
            let mut rig = KvsRig::new(1, 100_000.0, 256, 64, gen, true);
            rig.sim.run_until(Nanos::from_millis(100));
            black_box(rig.sim.events_processed())
        })
    });

    g.bench_function("dns_rig_100ms_at_100kpps", |bench| {
        bench.iter(|| {
            let mut rig = DnsRig::new(2, 100_000.0, 512, true);
            rig.sim.run_until(Nanos::from_millis(100));
            black_box(rig.sim.events_processed())
        })
    });

    g.bench_function("paxos_rig_200ms", |bench| {
        bench.iter(|| {
            let mut rig = PaxosRig::new(3, 2, Nanos::from_millis(100));
            rig.sim.run_until(Nanos::from_millis(200));
            black_box(rig.total_acked())
        })
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
        .sample_size(10);
    targets = bench_simulation
}
criterion_main!(benches);
