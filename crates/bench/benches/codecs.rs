//! Wire-format codec micro-benchmarks: the per-packet work every node in
//! the reproduction performs.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use inc_dns::{Name, Query, TYPE_A};
use inc_kvs::{decode as mc_decode, encode_request, FrameHeader, Request};
use inc_net::{build_udp, Endpoint, UdpFrame};
use inc_paxos::{MsgType, PaxosMsg};

fn bench_codecs(c: &mut Criterion) {
    let mut g = c.benchmark_group("codecs");

    let a = Endpoint::host(1, 40_000);
    let b = Endpoint::host(2, 11_211);
    g.bench_function("udp_build", |bench| {
        bench.iter(|| black_box(build_udp(black_box(a), black_box(b), b"payload-16-bytes")))
    });

    let pkt = build_udp(a, b, &[0xAB; 64]);
    g.bench_function("udp_parse", |bench| {
        bench.iter(|| black_box(UdpFrame::parse(black_box(&pkt)).unwrap().udp.dst_port))
    });

    let req = Request::Set {
        key: b"key-12345".to_vec(),
        value: vec![0xCD; 128],
        flags: 7,
        expiry: 0,
    };
    let frame = FrameHeader {
        request_id: 1,
        seq: 0,
        total: 1,
    };
    g.bench_function("memcached_encode_set", |bench| {
        bench.iter(|| black_box(encode_request(black_box(frame), black_box(&req), 42)))
    });
    let bytes = encode_request(frame, &req, 42);
    g.bench_function("memcached_decode_set", |bench| {
        bench.iter(|| black_box(mc_decode(black_box(&bytes)).unwrap()))
    });

    let query = Query {
        id: 7,
        name: Name::parse("host-123.example.com").unwrap(),
        qtype: TYPE_A,
        recursion_desired: false,
    };
    g.bench_function("dns_encode_query", |bench| {
        bench.iter(|| black_box(black_box(&query).encode()))
    });
    let qbytes = query.encode();
    g.bench_function("dns_decode_query", |bench| {
        bench.iter(|| black_box(Query::decode(black_box(&qbytes)).unwrap()))
    });

    let paxos = PaxosMsg::new(MsgType::Phase2a, 123_456, 3, vec![0xEF; 32]);
    g.bench_function("paxos_encode", |bench| {
        bench.iter(|| black_box(black_box(&paxos).encode()))
    });
    let pbytes = paxos.encode();
    g.bench_function("paxos_decode", |bench| {
        bench.iter(|| black_box(PaxosMsg::decode(black_box(&pbytes)).unwrap()))
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(30);
    targets = bench_codecs
}
criterion_main!(benches);
