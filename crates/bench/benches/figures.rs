//! Figure-regeneration benchmarks: one Criterion target per paper
//! artifact, timing the analytic computation behind each table/figure
//! (the event-driven validations live in the `src/bin` harnesses).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use inc_hw::{TofinoModel, TofinoProgram};
use inc_ondemand::apps::{crossover, dns_models, kvs_models, paxos_models};
use inc_ondemand::{OnDemandEnvelope, TorRack};
use inc_power::{calib, CpuModel};
use inc_sim::{Nanos, Rng};
use inc_workloads::{variation, GoogleTrace, PowerTrace, WorkloadClass};

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");

    g.bench_function("fig3a_kvs_sweep_and_crossover", |b| {
        b.iter(|| {
            let models = kvs_models();
            black_box(crossover(&models[0], &models[1], 1e6))
        })
    });

    g.bench_function("fig3b_paxos_sweep", |b| {
        b.iter(|| {
            let models = paxos_models();
            let total: f64 = models
                .iter()
                .flat_map(|m| (0..=40).map(move |i| m.power_w(1e6 * i as f64 / 40.0)))
                .sum();
            black_box(total)
        })
    });

    g.bench_function("fig3c_dns_crossover", |b| {
        b.iter(|| {
            let models = dns_models();
            black_box(crossover(&models[0], &models[1], 1e6))
        })
    });

    g.bench_function("fig5_envelope_sampling", |b| {
        let models = kvs_models();
        let env = OnDemandEnvelope {
            software: models[0].clone(),
            hardware: models[1].clone(),
            parked_card_w: calib::NETFPGA_REFERENCE_NIC_W + calib::LAKE_PARKED_GAP_W,
            software_nic_w: calib::MELLANOX_NIC_W,
        };
        b.iter(|| black_box(env.sample(1.2e6, 48).len()))
    });

    g.bench_function("tab_asic_normalized_power", |b| {
        let t = TofinoModel::snake_32x40();
        b.iter(|| {
            let mut acc = 0.0;
            for p in [
                TofinoProgram::L2Forward,
                TofinoProgram::L2WithP4xos,
                TofinoProgram::Diag,
            ] {
                for i in 0..=20 {
                    acc += t.power_norm(p, i as f64 / 20.0);
                }
            }
            black_box(acc)
        })
    });

    g.bench_function("tab_server_xeon_curve", |b| {
        let xeon = CpuModel::xeon_e5_2660_v4_dual();
        b.iter(|| {
            let mut acc = 0.0;
            for u in 0..=280 {
                acc += xeon.power_w(u as f64 / 10.0);
            }
            black_box(acc)
        })
    });

    g.bench_function("tab_trace_google_analysis", |b| {
        let mut rng = Rng::new(7);
        let trace = GoogleTrace::synthesize(&mut rng, 20, Nanos::from_secs(24 * 3600), 200);
        b.iter(|| black_box(trace.mean_candidate_cores_per_node(0.10, Nanos::from_secs(300))))
    });

    g.bench_function("tab_trace_dynamo_variation", |b| {
        let mut rng = Rng::new(8);
        let t = PowerTrace::synthesize(&mut rng, WorkloadClass::Cache, 2_000);
        b.iter(|| black_box(variation(&t.series, Nanos::from_secs(30))))
    });

    g.bench_function("tab_tor_tipping_point", |b| {
        let rack = TorRack::typical();
        b.iter(|| black_box(rack.tipping_point_pps()))
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(20);
    targets = bench_figures
}
criterion_main!(benches);
