//! Fleet-scale arbitration scaling curves: the hierarchical controller's
//! two modes on the `MegaFabricRig` — `Topology::fat_tree(8, 16)` (128
//! ToR devices in 8 pods) carrying zipf-ranked tenants with a rotating
//! churn set. `FullRescore` re-solves all 8 pod knapsacks every interval;
//! `Incremental` touches only pods with a dirty tenant. The gap between
//! the two curves at each tenant count is the payoff of the dirty-app
//! queue, and how that gap widens with fleet size is the scaling story
//! the README's decisions/s table summarises.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use inc_bench::rigs::MegaFabricRig;
use inc_ondemand::ArbitrationMode;

const SEED: u64 = 20260808;
const TICKS: u64 = 150;

fn bench_mega_fabric(c: &mut Criterion) {
    let mut g = c.benchmark_group("mega_fabric");

    for tenants in [250usize, 500, 1000] {
        for (label, mode) in [
            ("full", ArbitrationMode::FullRescore),
            ("incremental", ArbitrationMode::Incremental),
        ] {
            let name = format!("{label}_{tenants}tenants_x{TICKS}");
            g.bench_function(&name, |bench| {
                bench.iter(|| {
                    let mut rig = MegaFabricRig::new(tenants, SEED);
                    let mut ctl = rig.controller(mode);
                    black_box(rig.run(&mut ctl, TICKS))
                })
            });
        }
    }

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);
    targets = bench_mega_fabric
}
criterion_main!(benches);
