//! The software authoritative server (NSD in the paper's testbed, §4.4).

use inc_net::{build_reply, Packet, UdpFrame};
use inc_power::CpuModel;
use inc_sim::{
    impl_node_any, Admission, Ctx, Histogram, Nanos, Node, PortId, ServiceStation, Timer,
};

use crate::engine::{resolve, Resolution};
use crate::zone::Zone;

const TAG_POWER_TICK: u64 = 1;
const TAG_REPLY_BASE: u64 = 1 << 32;
const POWER_TICK: Nanos = Nanos::from_millis(20);

/// Cost model of the software DNS server.
#[derive(Clone, Copy, Debug)]
pub struct DnsServerConfig {
    /// CPU power model.
    pub cpu: CpuModel,
    /// Per-query CPU time (peak = cores / service_time).
    pub service_time: Nanos,
    /// Fixed kernel + daemon latency per query.
    pub fixed_latency: Nanos,
    /// NIC power (0 when behind the NetFPGA).
    pub nic_w: f64,
}

impl DnsServerConfig {
    /// The paper's NSD host: i7 with an Intel X520, peaking at 956 Krps
    /// (§4.4) with the ~×70 latency gap to Emu (§3.3).
    pub fn nsd_i7() -> Self {
        DnsServerConfig {
            cpu: CpuModel::i7_6700k_nsd(),
            service_time: Nanos::from_nanos(4_184), // 4 cores / 956 Krps
            fixed_latency: Nanos::from_micros(90),
            nic_w: inc_power::calib::INTEL_X520_NIC_W,
        }
    }

    /// The same host behind the NetFPGA card (NIC removed).
    pub fn nsd_behind_emu() -> Self {
        DnsServerConfig {
            nic_w: 0.0,
            ..Self::nsd_i7()
        }
    }
}

/// The software DNS server node.
pub struct DnsServer {
    config: DnsServerConfig,
    zone: Zone,
    cpu: ServiceStation,
    pending: std::collections::HashMap<u64, (Packet, PortId)>,
    next_tag: u64,
    current_util: f64,
    last_busy_ns: u128,
    background_util: f64,
    served: u64,
    /// Server-side service latency distribution.
    pub service_latency: Histogram,
}

impl DnsServer {
    /// Creates a server answering from `zone`.
    pub fn new(config: DnsServerConfig, zone: Zone) -> Self {
        let cores = config.cpu.cores as usize;
        DnsServer {
            config,
            zone,
            cpu: ServiceStation::new(cores, Some(Nanos::from_micros(500))),
            pending: std::collections::HashMap::new(),
            next_tag: 0,
            current_util: 0.0,
            last_busy_ns: 0,
            background_util: 0.0,
            served: 0,
            service_latency: Histogram::new(),
        }
    }

    /// Imposes co-tenant CPU load in cores.
    pub fn set_background_util(&mut self, cores: f64) {
        self.background_util = cores.max(0.0);
    }

    /// Queries served since creation.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Queries dropped from overload.
    pub fn dropped(&self) -> u64 {
        self.cpu.dropped()
    }

    /// Current core utilisation including background load.
    pub fn utilization(&self) -> f64 {
        self.current_util + self.background_util
    }
}

impl Node<Packet> for DnsServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Packet>) {
        ctx.schedule_in(POWER_TICK, TAG_POWER_TICK);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Packet>, port: PortId, msg: Packet) {
        let now = ctx.now();
        let Ok(frame) = UdpFrame::parse(&msg) else {
            return;
        };
        let Ok(Resolution::Answered(response)) = resolve(&self.zone, frame.payload, None) else {
            return; // Malformed queries are dropped, as NSD logs-and-drops.
        };
        let finish = match self.cpu.submit(now, self.config.service_time) {
            Admission::Served { finish, .. } => finish,
            Admission::Dropped => return,
        };
        let mut reply = build_reply(&frame, &response.encode());
        reply.id = msg.id;
        reply.sent_at = msg.sent_at;
        self.next_tag += 1;
        let tag = TAG_REPLY_BASE + self.next_tag;
        self.pending.insert(tag, (reply, port));
        let done = finish + self.config.fixed_latency;
        self.service_latency.record_nanos(done - now);
        ctx.schedule_at(done, tag);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Packet>, timer: Timer) {
        if timer.tag == TAG_POWER_TICK {
            let now = ctx.now();
            let busy = self.cpu.busy_core_ns(now);
            let window_ns = POWER_TICK.as_nanos() as u128;
            self.current_util = (busy.saturating_sub(self.last_busy_ns)) as f64 / window_ns as f64;
            self.last_busy_ns = busy;
            ctx.schedule_in(POWER_TICK, TAG_POWER_TICK);
        } else if let Some((reply, port)) = self.pending.remove(&timer.tag) {
            self.served += 1;
            ctx.send(port, reply);
        }
    }

    fn power_w(&self, _now: Nanos) -> f64 {
        self.config.cpu.power_w(self.utilization()) + self.config.nic_w
    }

    fn label(&self) -> String {
        "nsd".to_string()
    }

    impl_node_any!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_power_under_40w() {
        // §4.4: "The idle server takes less than 40W."
        let s = DnsServer::new(DnsServerConfig::nsd_i7(), Zone::new());
        let p = s.power_w(Nanos::ZERO);
        assert!(p < 40.0, "{p}");
        assert!(p > 30.0, "{p}");
    }

    #[test]
    fn peak_rate_is_956k() {
        let cfg = DnsServerConfig::nsd_i7();
        let peak = cfg.cpu.cores as f64 / cfg.service_time.as_secs_f64();
        assert!((940_000.0..975_000.0).contains(&peak), "{peak}");
    }
}
