//! The shared query-resolution engine.
//!
//! Both deployments answer queries identically — only timing, capacity and
//! power differ. Centralising the logic here is what makes the on-demand
//! shift behaviour-preserving.

use crate::wire::{DnsError, DnsResponse, Query, Rcode, TYPE_A};
use crate::zone::Zone;

/// How the engine handled a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// A response was produced (hit, NXDOMAIN, or NOTIMP).
    Answered(DnsResponse),
    /// The query exceeds this deployment's parse-depth capability and must
    /// be punted to a more capable resolver (§9.2's "worst case scenario").
    TooDeep,
}

/// Resolves a raw query against a zone.
///
/// `max_name_len` models a hardware parser's depth limit: names whose
/// encoding exceeds it cannot be parsed by the dataplane and return
/// [`Resolution::TooDeep`]. Software passes `None`.
pub fn resolve(
    zone: &Zone,
    query_bytes: &[u8],
    max_name_len: Option<usize>,
) -> Result<Resolution, DnsError> {
    let query = Query::decode(query_bytes)?;
    if let Some(limit) = max_name_len {
        if query.name.encoded_len() > limit {
            return Ok(Resolution::TooDeep);
        }
    }
    if query.qtype != TYPE_A {
        // Emu DNS serves A lookups only (§3.3).
        return Ok(Resolution::Answered(DnsResponse {
            id: query.id,
            rcode: Rcode::NotImp,
            name: query.name,
            answers: vec![],
        }));
    }
    let response = match zone.lookup(&query.name) {
        Some((addr, ttl)) => DnsResponse {
            id: query.id,
            rcode: Rcode::NoError,
            name: query.name,
            answers: vec![(addr, ttl)],
        },
        // "Emu DNS informs the client that it cannot resolve the name."
        None => DnsResponse {
            id: query.id,
            rcode: Rcode::NxDomain,
            name: query.name,
            answers: vec![],
        },
    };
    Ok(Resolution::Answered(response))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{Name, TYPE_AAAA};

    fn query(name: &str, qtype: u16) -> Vec<u8> {
        Query {
            id: 42,
            name: Name::parse(name).unwrap(),
            qtype,
            recursion_desired: false,
        }
        .encode()
    }

    #[test]
    fn hit_answers_with_record() {
        let zone = Zone::synthetic(8);
        let r = resolve(&zone, &query("host-3.example.com", TYPE_A), None).unwrap();
        match r {
            Resolution::Answered(resp) => {
                assert_eq!(resp.rcode, Rcode::NoError);
                assert_eq!(resp.answers[0].0, Zone::synthetic_addr(3));
                assert_eq!(resp.id, 42);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn miss_answers_nxdomain() {
        let zone = Zone::synthetic(8);
        let r = resolve(&zone, &query("nope.example.com", TYPE_A), None).unwrap();
        match r {
            Resolution::Answered(resp) => assert_eq!(resp.rcode, Rcode::NxDomain),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn non_a_query_is_notimp() {
        let zone = Zone::synthetic(8);
        let r = resolve(&zone, &query("host-1.example.com", TYPE_AAAA), None).unwrap();
        match r {
            Resolution::Answered(resp) => assert_eq!(resp.rcode, Rcode::NotImp),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn deep_names_punt_to_software() {
        let zone = Zone::synthetic(8);
        let deep = "a.very.deep.chain.of.labels.that.keeps.going.example.com";
        let r = resolve(&zone, &query(deep, TYPE_A), Some(32)).unwrap();
        assert_eq!(r, Resolution::TooDeep);
        // The same query parses fine without the hardware limit.
        let r = resolve(&zone, &query(deep, TYPE_A), None).unwrap();
        assert!(matches!(r, Resolution::Answered(_)));
    }

    #[test]
    fn garbage_is_an_error() {
        let zone = Zone::synthetic(1);
        assert!(resolve(&zone, &[1, 2, 3], None).is_err());
    }
}
