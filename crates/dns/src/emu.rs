//! The Emu DNS hardware device (§3.3).
//!
//! Emu DNS runs as the main logical core on the NetFPGA shell (Figure 2),
//! using only on-chip memory. The paper amended the original design with a
//! LaKe-style packet classifier so the card also serves as a NIC for
//! non-DNS traffic and can shift DNS serving on demand (§3.3, §9.2). The
//! design is *not* pipelined, which caps it at roughly 1 M requests/second
//! (§4.4) — modelled as a single-server station with a 1 µs occupancy.

use inc_hw::{
    NetRateController, Placement, SumeCard, HOST_DMA_PORT, PCIE_DMA_ONE_WAY, SHELL_PIPELINE_LATENCY,
};
use inc_net::{build_reply, Packet, UdpFrame};
use inc_power::calib;
use inc_sim::{
    impl_node_any, Admission, Ctx, Histogram, Nanos, Node, PortId, ServiceStation, Timer,
    WindowRate,
};

use crate::engine::{resolve, Resolution};
use crate::wire::DNS_PORT;
use crate::zone::Zone;

/// Emu's non-pipelined core holds each query for 1 µs → ~1 Mrps (§4.4).
const EMU_SERVICE: Nanos = Nanos::from_micros(1);

/// The hardware parser's name-depth budget in bytes. Deeper names are
/// punted to the host (§9.2 discusses the same limit on ASICs).
const EMU_MAX_NAME_LEN: usize = 128;

/// Bound on the on-chip resolution table (on-chip memory only, §3.4).
pub const EMU_MAX_RECORDS: usize = 65_536;

const TAG_POWER_TICK: u64 = 1;
const POWER_TICK: Nanos = Nanos::from_millis(20);

/// Cumulative device counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct EmuDeviceStats {
    /// Queries answered in hardware.
    pub served_hw: u64,
    /// DNS packets forwarded to the host (mode, depth, or capacity).
    pub to_host: u64,
    /// Non-DNS packets forwarded.
    pub passthrough: u64,
    /// Queries dropped by the (saturated) logic core.
    pub dropped: u64,
    /// Placement shifts.
    pub shifts: u64,
}

/// The Emu DNS card as a simulation node.
pub struct EmuDevice {
    card: SumeCard,
    zone: Zone,
    core: ServiceStation,
    placement: Placement,
    controller: Option<NetRateController>,
    stats: EmuDeviceStats,
    rate_window: WindowRate,
    current_load: f64,
    /// Latency of hardware-answered queries.
    pub hw_latency: Histogram,
    /// Shift log: (time, new placement).
    pub shift_log: Vec<(Nanos, Placement)>,
}

impl EmuDevice {
    /// Creates an Emu device serving `zone`, starting parked in software
    /// placement.
    ///
    /// # Panics
    ///
    /// Panics if the zone exceeds the on-chip record budget
    /// ([`EMU_MAX_RECORDS`]).
    pub fn new(zone: Zone) -> Self {
        assert!(
            zone.len() <= EMU_MAX_RECORDS,
            "zone of {} records exceeds on-chip capacity {}",
            zone.len(),
            EMU_MAX_RECORDS
        );
        let mut card = SumeCard::reference_nic().with_logic(
            calib::EMU_DNS_STANDALONE_IDLE_W - calib::NETFPGA_REFERENCE_NIC_W,
            calib::EMU_DNS_DYNAMIC_MAX_W,
        );
        card.park();
        EmuDevice {
            card,
            zone,
            core: ServiceStation::new(1, Some(Nanos::from_micros(50))),
            placement: Placement::Software,
            controller: None,
            stats: EmuDeviceStats::default(),
            rate_window: WindowRate::new(Nanos::from_millis(100), 10),
            current_load: 0.0,
            hw_latency: Histogram::new(),
            shift_log: Vec::new(),
        }
    }

    /// Installs the network-controlled on-demand controller.
    pub fn with_controller(mut self, controller: NetRateController) -> Self {
        self.controller = Some(controller);
        self
    }

    /// Starts serving in hardware (the always-on §4.4 configuration).
    pub fn started_in_hardware(mut self) -> Self {
        self.apply_placement(Nanos::ZERO, Placement::HARDWARE);
        self.shift_log.clear();
        self.stats.shifts = 0;
        self
    }

    /// Current placement.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Cumulative counters.
    pub fn stats(&self) -> EmuDeviceStats {
        self.stats
    }

    /// Hardware-measured DNS packet rate (network feedback for host
    /// controllers).
    pub fn measured_rate(&mut self, now: Nanos) -> f64 {
        self.rate_window.rate(now)
    }

    /// Applies a placement change. Unlike LaKe there is no cache to warm:
    /// the resolution table is static configuration, so serving can start
    /// immediately (§9.2: "much the same as shifting KVS" but simpler).
    pub fn apply_placement(&mut self, now: Nanos, placement: Placement) {
        if placement == self.placement {
            return;
        }
        self.placement = placement;
        self.stats.shifts += 1;
        self.shift_log.push((now, placement));
        match placement {
            Placement::Device(_) => self.card.unpark(),
            Placement::Software => {
                self.card.park();
                self.core.quiesce(now);
            }
        }
    }

    fn is_dns(&self, pkt: &Packet) -> bool {
        match UdpFrame::parse(pkt) {
            Ok(f) => f.udp.dst_port == DNS_PORT || f.udp.src_port == DNS_PORT,
            Err(_) => false,
        }
    }

    fn serve_hw(&mut self, ctx: &mut Ctx<'_, Packet>, pkt: Packet) {
        let now = ctx.now();
        let Ok(frame) = UdpFrame::parse(&pkt) else {
            self.stats.passthrough += 1;
            ctx.send_after(SHELL_PIPELINE_LATENCY, HOST_DMA_PORT, pkt);
            return;
        };
        match resolve(&self.zone, frame.payload, Some(EMU_MAX_NAME_LEN)) {
            Ok(Resolution::Answered(response)) => {
                let finish = match self.core.submit(now, EMU_SERVICE) {
                    Admission::Served { finish, .. } => finish,
                    Admission::Dropped => {
                        self.stats.dropped += 1;
                        return;
                    }
                };
                let total = SHELL_PIPELINE_LATENCY + (finish - now);
                let mut reply = build_reply(&frame, &response.encode());
                reply.id = pkt.id;
                reply.sent_at = pkt.sent_at;
                self.stats.served_hw += 1;
                self.hw_latency.record_nanos(total);
                ctx.send_after(total, PortId::P0, reply);
            }
            Ok(Resolution::TooDeep) => {
                // Names beyond the parser budget go to the host resolver.
                self.stats.to_host += 1;
                ctx.send_after(
                    SHELL_PIPELINE_LATENCY + PCIE_DMA_ONE_WAY,
                    HOST_DMA_PORT,
                    pkt,
                );
            }
            Err(_) => {
                // Unparseable: hand to software like any unknown packet.
                self.stats.to_host += 1;
                ctx.send_after(
                    SHELL_PIPELINE_LATENCY + PCIE_DMA_ONE_WAY,
                    HOST_DMA_PORT,
                    pkt,
                );
            }
        }
    }
}

impl Node<Packet> for EmuDevice {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Packet>) {
        ctx.schedule_in(POWER_TICK, TAG_POWER_TICK);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Packet>, port: PortId, msg: Packet) {
        let now = ctx.now();
        match port {
            PortId::P0 if self.is_dns(&msg) => {
                self.rate_window.record(now, 1);
                if let Some(ctl) = &mut self.controller {
                    if let Some(p) = ctl.on_app_packet(now) {
                        self.apply_placement(now, p);
                    }
                }
                match self.placement {
                    Placement::Device(_) => self.serve_hw(ctx, msg),
                    Placement::Software => {
                        self.stats.to_host += 1;
                        ctx.send_after(
                            SHELL_PIPELINE_LATENCY + PCIE_DMA_ONE_WAY,
                            HOST_DMA_PORT,
                            msg,
                        );
                    }
                }
            }
            HOST_DMA_PORT => {
                self.stats.passthrough += 1;
                ctx.send_after(SHELL_PIPELINE_LATENCY, PortId::P0, msg);
            }
            _ => {
                self.stats.passthrough += 1;
                ctx.send_after(SHELL_PIPELINE_LATENCY, HOST_DMA_PORT, msg);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Packet>, timer: Timer) {
        if timer.tag == TAG_POWER_TICK {
            let now = ctx.now();
            let rate = self.rate_window.rate(now);
            self.current_load = (rate / calib::EMU_DNS_PEAK_RPS).clamp(0.0, 1.0);
            if let Some(ctl) = &mut self.controller {
                if let Some(p) = ctl.on_tick(now) {
                    self.apply_placement(now, p);
                }
            }
            ctx.schedule_in(POWER_TICK, TAG_POWER_TICK);
        }
    }

    fn power_w(&self, _now: Nanos) -> f64 {
        self.card.power_w(self.current_load)
    }

    fn label(&self) -> String {
        "emu-dns".to_string()
    }

    impl_node_any!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standalone_power_matches_calibration() {
        let dev = EmuDevice::new(Zone::synthetic(16)).started_in_hardware();
        // §4.4 via calibration: 18.0 W standalone idle, <0.5 W dynamic.
        assert!((dev.card.power_w(0.0) - 18.0).abs() < 1e-9);
        assert!(dev.card.power_w(1.0) < 18.6);
    }

    #[test]
    fn parked_emu_saves_logic_power() {
        let dev = EmuDevice::new(Zone::synthetic(16));
        assert_eq!(dev.placement(), Placement::Software);
        assert!(dev.card.power_w(0.0) < 18.0);
    }

    #[test]
    #[should_panic(expected = "on-chip capacity")]
    fn oversized_zone_rejected() {
        let _ = EmuDevice::new(Zone::synthetic(EMU_MAX_RECORDS as u64 + 1));
    }

    #[test]
    fn placement_shift_logs() {
        let mut dev = EmuDevice::new(Zone::synthetic(4));
        dev.apply_placement(Nanos::from_secs(1), Placement::HARDWARE);
        dev.apply_placement(Nanos::from_secs(2), Placement::Software);
        assert_eq!(dev.stats().shifts, 2);
        assert_eq!(dev.shift_log.len(), 2);
    }
}
