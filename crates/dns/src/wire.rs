//! DNS wire format (RFC 1035 subset).
//!
//! Emu DNS supports non-recursive name → IPv4 resolution (§3.3); this
//! module implements the corresponding wire format for real: the 12-byte
//! header, QNAME label encoding (including decompression of pointers when
//! parsing), the question section, and A-record answers. Both the hardware
//! and software servers operate on these exact bytes.

use std::net::Ipv4Addr;

/// Errors decoding a DNS message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DnsError {
    /// Ran off the end of the buffer.
    Truncated,
    /// A label exceeded 63 bytes or the name exceeded 255.
    BadName,
    /// A compression pointer loop or forward pointer.
    BadPointer,
    /// The message had no question.
    NoQuestion,
    /// Unsupported query type for this server.
    Unsupported,
}

impl std::fmt::Display for DnsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DnsError::Truncated => write!(f, "message truncated"),
            DnsError::BadName => write!(f, "malformed name"),
            DnsError::BadPointer => write!(f, "bad compression pointer"),
            DnsError::NoQuestion => write!(f, "no question section"),
            DnsError::Unsupported => write!(f, "unsupported query"),
        }
    }
}

impl std::error::Error for DnsError {}

/// Response codes (RCODE).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rcode {
    /// No error.
    NoError,
    /// Format error.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist.
    NxDomain,
    /// Query kind not implemented.
    NotImp,
}

impl Rcode {
    fn to_u4(self) -> u16 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
        }
    }

    fn from_u4(v: u16) -> Rcode {
        match v & 0xf {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            _ => Rcode::NotImp,
        }
    }
}

/// Record/query type A (IPv4 host address).
pub const TYPE_A: u16 = 1;
/// Record/query type AAAA (not served by Emu DNS).
pub const TYPE_AAAA: u16 = 28;
/// Class IN.
pub const CLASS_IN: u16 = 1;

/// The standard DNS UDP port.
pub const DNS_PORT: u16 = 53;

/// A domain name held as lowercase labels.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Name(Vec<Vec<u8>>);

impl Name {
    /// Parses a dotted name (e.g. `"host.example.com"`), lowercasing it.
    ///
    /// Returns an error for empty/oversized labels or total length > 255.
    pub fn parse(s: &str) -> Result<Name, DnsError> {
        let s = s.trim_end_matches('.');
        if s.is_empty() {
            return Ok(Name(Vec::new()));
        }
        let mut labels = Vec::new();
        let mut total = 1; // Root byte.
        for part in s.split('.') {
            let bytes = part.as_bytes();
            if bytes.is_empty() || bytes.len() > 63 {
                return Err(DnsError::BadName);
            }
            total += bytes.len() + 1;
            if total > 255 {
                return Err(DnsError::BadName);
            }
            labels.push(bytes.to_ascii_lowercase());
        }
        Ok(Name(labels))
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.0.len()
    }

    /// Encoded length in bytes (uncompressed).
    pub fn encoded_len(&self) -> usize {
        self.0.iter().map(|l| l.len() + 1).sum::<usize>() + 1
    }

    /// Encodes as an uncompressed sequence of length-prefixed labels.
    pub fn encode(&self, out: &mut Vec<u8>) {
        for label in &self.0 {
            out.push(label.len() as u8);
            out.extend_from_slice(label);
        }
        out.push(0);
    }

    /// Decodes a (possibly compressed) name starting at `pos` inside
    /// `msg`. Returns the name and the offset just past its in-place
    /// encoding.
    pub fn decode(msg: &[u8], pos: usize) -> Result<(Name, usize), DnsError> {
        let mut labels = Vec::new();
        let mut i = pos;
        let mut end = None; // Set at the first pointer.
        let mut jumps = 0;
        let mut total = 1;
        loop {
            let &len = msg.get(i).ok_or(DnsError::Truncated)?;
            if len & 0xC0 == 0xC0 {
                // Compression pointer.
                let &lo = msg.get(i + 1).ok_or(DnsError::Truncated)?;
                let target = (((len & 0x3F) as usize) << 8) | lo as usize;
                if end.is_none() {
                    end = Some(i + 2);
                }
                if target >= i {
                    return Err(DnsError::BadPointer); // Must point backwards.
                }
                jumps += 1;
                if jumps > 32 {
                    return Err(DnsError::BadPointer);
                }
                i = target;
                continue;
            }
            if len & 0xC0 != 0 {
                return Err(DnsError::BadName);
            }
            if len == 0 {
                let end = end.unwrap_or(i + 1);
                return Ok((Name(labels), end));
            }
            let len = len as usize;
            total += len + 1;
            if total > 255 {
                return Err(DnsError::BadName);
            }
            let label = msg.get(i + 1..i + 1 + len).ok_or(DnsError::Truncated)?;
            labels.push(label.to_ascii_lowercase());
            i += 1 + len;
        }
    }
}

impl std::fmt::Display for Name {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.is_empty() {
            return write!(f, ".");
        }
        for (i, l) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{}", String::from_utf8_lossy(l))?;
        }
        Ok(())
    }
}

/// A parsed DNS query (single question).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Query {
    /// Transaction id.
    pub id: u16,
    /// Queried name.
    pub name: Name,
    /// Query type (e.g. [`TYPE_A`]).
    pub qtype: u16,
    /// Recursion desired flag (Emu DNS serves non-recursive only).
    pub recursion_desired: bool,
}

impl Query {
    /// Encodes the query message.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.name.encoded_len() + 4);
        out.extend_from_slice(&self.id.to_be_bytes());
        let flags: u16 = if self.recursion_desired { 0x0100 } else { 0 };
        out.extend_from_slice(&flags.to_be_bytes());
        out.extend_from_slice(&1u16.to_be_bytes()); // QDCOUNT
        out.extend_from_slice(&0u16.to_be_bytes()); // ANCOUNT
        out.extend_from_slice(&0u16.to_be_bytes()); // NSCOUNT
        out.extend_from_slice(&0u16.to_be_bytes()); // ARCOUNT
        self.name.encode(&mut out);
        out.extend_from_slice(&self.qtype.to_be_bytes());
        out.extend_from_slice(&CLASS_IN.to_be_bytes());
        out
    }

    /// Decodes a query message.
    pub fn decode(msg: &[u8]) -> Result<Query, DnsError> {
        if msg.len() < 12 {
            return Err(DnsError::Truncated);
        }
        let id = u16::from_be_bytes([msg[0], msg[1]]);
        let flags = u16::from_be_bytes([msg[2], msg[3]]);
        let qdcount = u16::from_be_bytes([msg[4], msg[5]]);
        if qdcount == 0 {
            return Err(DnsError::NoQuestion);
        }
        let (name, pos) = Name::decode(msg, 12)?;
        let qtype = u16::from_be_bytes([
            *msg.get(pos).ok_or(DnsError::Truncated)?,
            *msg.get(pos + 1).ok_or(DnsError::Truncated)?,
        ]);
        Ok(Query {
            id,
            name,
            qtype,
            recursion_desired: flags & 0x0100 != 0,
        })
    }
}

/// A parsed DNS response (answers limited to A records).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DnsResponse {
    /// Transaction id echoed from the query.
    pub id: u16,
    /// Response code.
    pub rcode: Rcode,
    /// The question being answered.
    pub name: Name,
    /// A-record answers.
    pub answers: Vec<(Ipv4Addr, u32)>,
}

impl DnsResponse {
    /// Encodes the response, compressing answer names with a pointer to
    /// the question (offset 12), as real servers do.
    pub fn encode(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(12 + self.name.encoded_len() + 4 + self.answers.len() * 16);
        out.extend_from_slice(&self.id.to_be_bytes());
        // QR=1, AA=1 (authoritative), RCODE.
        let flags: u16 = 0x8400 | self.rcode.to_u4();
        out.extend_from_slice(&flags.to_be_bytes());
        out.extend_from_slice(&1u16.to_be_bytes());
        out.extend_from_slice(&(self.answers.len() as u16).to_be_bytes());
        out.extend_from_slice(&0u16.to_be_bytes());
        out.extend_from_slice(&0u16.to_be_bytes());
        self.name.encode(&mut out);
        out.extend_from_slice(&TYPE_A.to_be_bytes());
        out.extend_from_slice(&CLASS_IN.to_be_bytes());
        for (addr, ttl) in &self.answers {
            out.extend_from_slice(&[0xC0, 12]); // Pointer to the question name.
            out.extend_from_slice(&TYPE_A.to_be_bytes());
            out.extend_from_slice(&CLASS_IN.to_be_bytes());
            out.extend_from_slice(&ttl.to_be_bytes());
            out.extend_from_slice(&4u16.to_be_bytes());
            out.extend_from_slice(&addr.octets());
        }
        out
    }

    /// Decodes a response message.
    pub fn decode(msg: &[u8]) -> Result<DnsResponse, DnsError> {
        if msg.len() < 12 {
            return Err(DnsError::Truncated);
        }
        let id = u16::from_be_bytes([msg[0], msg[1]]);
        let flags = u16::from_be_bytes([msg[2], msg[3]]);
        let rcode = Rcode::from_u4(flags);
        let qdcount = u16::from_be_bytes([msg[4], msg[5]]);
        let ancount = u16::from_be_bytes([msg[6], msg[7]]);
        if qdcount == 0 {
            return Err(DnsError::NoQuestion);
        }
        let (name, mut pos) = Name::decode(msg, 12)?;
        pos += 4; // QTYPE + QCLASS.
        let mut answers = Vec::new();
        for _ in 0..ancount {
            let (_rr_name, p) = Name::decode(msg, pos)?;
            pos = p;
            let rr_type = u16::from_be_bytes([
                *msg.get(pos).ok_or(DnsError::Truncated)?,
                *msg.get(pos + 1).ok_or(DnsError::Truncated)?,
            ]);
            let ttl = u32::from_be_bytes([
                *msg.get(pos + 4).ok_or(DnsError::Truncated)?,
                *msg.get(pos + 5).ok_or(DnsError::Truncated)?,
                *msg.get(pos + 6).ok_or(DnsError::Truncated)?,
                *msg.get(pos + 7).ok_or(DnsError::Truncated)?,
            ]);
            let rdlen = u16::from_be_bytes([
                *msg.get(pos + 8).ok_or(DnsError::Truncated)?,
                *msg.get(pos + 9).ok_or(DnsError::Truncated)?,
            ]) as usize;
            let rdata = msg
                .get(pos + 10..pos + 10 + rdlen)
                .ok_or(DnsError::Truncated)?;
            if rr_type == TYPE_A && rdlen == 4 {
                answers.push((Ipv4Addr::new(rdata[0], rdata[1], rdata[2], rdata[3]), ttl));
            }
            pos += 10 + rdlen;
        }
        Ok(DnsResponse {
            id,
            rcode,
            name,
            answers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_parse_and_display() {
        let n = Name::parse("Host.Example.COM").unwrap();
        assert_eq!(n.to_string(), "host.example.com");
        assert_eq!(n.label_count(), 3);
        assert_eq!(Name::parse("a.b.").unwrap().to_string(), "a.b");
        assert_eq!(Name::parse("").unwrap().label_count(), 0);
    }

    #[test]
    fn name_rejects_bad_labels() {
        assert_eq!(Name::parse("a..b"), Err(DnsError::BadName));
        let long_label = "x".repeat(64);
        assert_eq!(Name::parse(&long_label), Err(DnsError::BadName));
        let long_name = (0..50).map(|_| "abcde").collect::<Vec<_>>().join(".");
        assert_eq!(Name::parse(&long_name), Err(DnsError::BadName));
    }

    #[test]
    fn name_encode_decode_round_trip() {
        let n = Name::parse("www.example.org").unwrap();
        let mut buf = vec![0xFF; 3]; // Leading junk to offset the name.
        n.encode(&mut buf);
        let (got, end) = Name::decode(&buf, 3).unwrap();
        assert_eq!(got, n);
        assert_eq!(end, buf.len());
    }

    #[test]
    fn name_decodes_compression_pointer() {
        // "example.com" at offset 2; pointer to it at the end.
        let mut buf = vec![0u8, 0];
        Name::parse("example.com").unwrap().encode(&mut buf);
        let ptr_at = buf.len();
        buf.extend_from_slice(&[0xC0, 2]);
        let (got, end) = Name::decode(&buf, ptr_at).unwrap();
        assert_eq!(got.to_string(), "example.com");
        assert_eq!(end, ptr_at + 2);
    }

    #[test]
    fn name_decodes_partial_compression() {
        // "com" at offset 0; "example" + pointer at offset 5.
        let mut buf = Vec::new();
        Name::parse("com").unwrap().encode(&mut buf); // 5 bytes
        let start = buf.len();
        buf.push(7);
        buf.extend_from_slice(b"example");
        buf.extend_from_slice(&[0xC0, 0]);
        let (got, _) = Name::decode(&buf, start).unwrap();
        assert_eq!(got.to_string(), "example.com");
    }

    #[test]
    fn pointer_loops_rejected() {
        // Forward/self pointers are invalid.
        let buf = [0xC0u8, 0x00];
        assert_eq!(Name::decode(&buf, 0), Err(DnsError::BadPointer));
    }

    #[test]
    fn query_round_trip() {
        let q = Query {
            id: 0xBEEF,
            name: Name::parse("host-7.example.com").unwrap(),
            qtype: TYPE_A,
            recursion_desired: false,
        };
        let bytes = q.encode();
        let got = Query::decode(&bytes).unwrap();
        assert_eq!(got, q);
    }

    #[test]
    fn response_round_trip_with_answers() {
        let r = DnsResponse {
            id: 7,
            rcode: Rcode::NoError,
            name: Name::parse("a.b.c").unwrap(),
            answers: vec![
                (Ipv4Addr::new(10, 1, 2, 3), 300),
                (Ipv4Addr::new(10, 1, 2, 4), 300),
            ],
        };
        let bytes = r.encode();
        let got = DnsResponse::decode(&bytes).unwrap();
        assert_eq!(got, r);
    }

    #[test]
    fn nxdomain_round_trip() {
        let r = DnsResponse {
            id: 9,
            rcode: Rcode::NxDomain,
            name: Name::parse("missing.example.com").unwrap(),
            answers: vec![],
        };
        let got = DnsResponse::decode(&r.encode()).unwrap();
        assert_eq!(got.rcode, Rcode::NxDomain);
        assert!(got.answers.is_empty());
    }

    #[test]
    fn truncated_messages_rejected() {
        assert_eq!(Query::decode(&[0u8; 5]), Err(DnsError::Truncated));
        let q = Query {
            id: 1,
            name: Name::parse("x.y").unwrap(),
            qtype: TYPE_A,
            recursion_desired: false,
        };
        let bytes = q.encode();
        assert!(Query::decode(&bytes[..bytes.len() - 3]).is_err());
    }
}
