//! The resolution table.
//!
//! Emu DNS "supports resolution queries from names to IPv4 addresses"
//! against a fixed table (§3.3). The same [`Zone`] content backs both the
//! hardware and software servers so a placement shift is invisible.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use crate::wire::{DnsError, Name};

/// A name → IPv4 resolution table with per-record TTLs.
#[derive(Clone, Debug, Default)]
pub struct Zone {
    records: HashMap<Name, (Ipv4Addr, u32)>,
    default_ttl: u32,
}

impl Zone {
    /// Creates an empty zone with a 300 s default TTL.
    pub fn new() -> Self {
        Zone {
            records: HashMap::new(),
            default_ttl: 300,
        }
    }

    /// Adds an A record by dotted name.
    pub fn insert(&mut self, name: &str, addr: Ipv4Addr) -> Result<(), DnsError> {
        let name = Name::parse(name)?;
        self.records.insert(name, (addr, self.default_ttl));
        Ok(())
    }

    /// Adds an A record with an explicit TTL.
    pub fn insert_with_ttl(
        &mut self,
        name: &str,
        addr: Ipv4Addr,
        ttl: u32,
    ) -> Result<(), DnsError> {
        let name = Name::parse(name)?;
        self.records.insert(name, (addr, ttl));
        Ok(())
    }

    /// Looks up a name (already-normalized [`Name`] keys match
    /// case-insensitively by construction).
    pub fn lookup(&self, name: &Name) -> Option<(Ipv4Addr, u32)> {
        self.records.get(name).copied()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when the zone has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The deterministic address used by test/bench zones for `host-{i}`:
    /// derived from the index so clients can verify answers.
    pub fn synthetic_addr(i: u64) -> Ipv4Addr {
        let b = (i % 0xFFFF) as u32;
        Ipv4Addr::new(192, 168, (b >> 8) as u8, (b & 0xFF) as u8)
    }

    /// Builds the benchmark zone `host-0.example.com` .. `host-{n-1}`.
    pub fn synthetic(n: u64) -> Zone {
        let mut z = Zone::new();
        for i in 0..n {
            z.insert(&format!("host-{i}.example.com"), Zone::synthetic_addr(i))
                .expect("synthetic names are valid");
        }
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut z = Zone::new();
        z.insert("www.Example.com", Ipv4Addr::new(1, 2, 3, 4))
            .unwrap();
        let name = Name::parse("WWW.example.COM").unwrap();
        assert_eq!(z.lookup(&name), Some((Ipv4Addr::new(1, 2, 3, 4), 300)));
        assert_eq!(z.len(), 1);
    }

    #[test]
    fn missing_name_is_none() {
        let z = Zone::synthetic(4);
        let name = Name::parse("host-99.example.com").unwrap();
        assert_eq!(z.lookup(&name), None);
    }

    #[test]
    fn synthetic_zone_is_verifiable() {
        let z = Zone::synthetic(100);
        assert_eq!(z.len(), 100);
        for i in [0u64, 7, 99] {
            let name = Name::parse(&format!("host-{i}.example.com")).unwrap();
            assert_eq!(z.lookup(&name).unwrap().0, Zone::synthetic_addr(i));
        }
    }

    #[test]
    fn custom_ttl() {
        let mut z = Zone::new();
        z.insert_with_ttl("a.b", Ipv4Addr::new(9, 9, 9, 9), 60)
            .unwrap();
        let name = Name::parse("a.b").unwrap();
        assert_eq!(z.lookup(&name).unwrap().1, 60);
    }

    #[test]
    fn bad_names_rejected() {
        let mut z = Zone::new();
        assert!(z.insert("a..b", Ipv4Addr::new(1, 1, 1, 1)).is_err());
    }
}
