//! The DNS case study: Emu DNS and an NSD-like software server (§3.3).
//!
//! Emu DNS is a non-recursive, A-record-only authoritative server compiled
//! to the NetFPGA from C# via the Emu/Kiwi flow; the paper benchmarks it
//! against NSD and adds a packet classifier so it can act as a NIC and
//! shift on demand. This crate implements:
//!
//! * [`wire`] — the RFC 1035 wire format (labels, compression, A records).
//! * [`Zone`] — the resolution table shared by both deployments.
//! * [`engine`] — the placement-independent resolution logic.
//! * [`EmuDevice`] — the hardware server with the non-pipelined ~1 Mrps
//!   core, parse-depth punting, parking, and the embedded controller.
//! * [`DnsServer`] — the NSD-like software server on the i7 power model.
//! * [`DnsClient`] — open-loop query generation with answer verification.

pub mod client;
pub mod emu;
pub mod engine;
pub mod server;
pub mod wire;
pub mod zone;

pub use client::{DnsClient, DnsClientStats};
pub use emu::{EmuDevice, EmuDeviceStats, EMU_MAX_RECORDS};
pub use engine::{resolve, Resolution};
pub use server::{DnsServer, DnsServerConfig};
pub use wire::{DnsError, DnsResponse, Name, Query, Rcode, CLASS_IN, DNS_PORT, TYPE_A, TYPE_AAAA};
pub use zone::Zone;
