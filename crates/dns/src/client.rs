//! DNS load generation with answer verification.

use inc_net::{build_udp, Endpoint, Packet, UdpFrame};
use inc_sim::{impl_node_any, Ctx, Histogram, Nanos, Node, PortId, Timer};

use crate::wire::{DnsResponse, Name, Query, Rcode, TYPE_A};
use crate::zone::Zone;

const TAG_SEND: u64 = 1;

/// Cumulative client statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct DnsClientStats {
    /// Queries sent.
    pub sent: u64,
    /// Responses received.
    pub received: u64,
    /// Responses whose answer did not match the zone.
    pub wrong: u64,
    /// NXDOMAIN responses.
    pub nxdomain: u64,
}

/// An open-loop DNS query generator over the synthetic zone names.
pub struct DnsClient {
    src: Endpoint,
    dst: Endpoint,
    rate_pps: f64,
    /// Number of names to draw from (`host-{0..names}.example.com`).
    names: u64,
    /// Fraction of queries for names *outside* the zone (miss traffic).
    miss_ratio: f64,
    verify: bool,
    stats: DnsClientStats,
    /// All-time latency histogram.
    pub latency: Histogram,
    /// Resettable window histogram.
    pub window_latency: Histogram,
    window_received_base: u64,
    next_id: u16,
    outstanding: std::collections::HashMap<u16, (Nanos, u64, bool)>,
    stopped: bool,
}

impl DnsClient {
    /// Creates a client issuing `rate_pps` A queries/second for a zone of
    /// `names` synthetic records.
    pub fn new(src: Endpoint, dst: Endpoint, rate_pps: f64, names: u64) -> Self {
        DnsClient {
            src,
            dst,
            rate_pps,
            names,
            miss_ratio: 0.0,
            verify: true,
            stats: DnsClientStats::default(),
            latency: Histogram::new(),
            window_latency: Histogram::new(),
            window_received_base: 0,
            next_id: 0,
            outstanding: std::collections::HashMap::new(),
            stopped: false,
        }
    }

    /// Sets the fraction of deliberately unresolvable queries.
    pub fn with_miss_ratio(mut self, ratio: f64) -> Self {
        self.miss_ratio = ratio.clamp(0.0, 1.0);
        self
    }

    /// Changes the offered rate.
    pub fn set_rate(&mut self, rate_pps: f64) {
        self.rate_pps = rate_pps;
    }

    /// Stops offering load.
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// Returns cumulative statistics.
    pub fn stats(&self) -> DnsClientStats {
        self.stats
    }

    /// Drains the measurement window.
    pub fn take_window(&mut self) -> (u64, Histogram) {
        let n = self.stats.received - self.window_received_base;
        self.window_received_base = self.stats.received;
        (n, std::mem::take(&mut self.window_latency))
    }

    fn send_one(&mut self, ctx: &mut Ctx<'_, Packet>) {
        let miss = ctx.rng().chance(self.miss_ratio);
        let idx = ctx.rng().range_u64(0, self.names);
        let name = if miss {
            format!("absent-{idx}.example.com")
        } else {
            format!("host-{idx}.example.com")
        };
        self.next_id = self.next_id.wrapping_add(1);
        let id = self.next_id;
        let q = Query {
            id,
            name: Name::parse(&name).expect("generated names are valid"),
            qtype: TYPE_A,
            recursion_desired: false,
        };
        let now = ctx.now();
        let mut pkt = build_udp(self.src, self.dst, &q.encode());
        pkt.sent_at = now;
        pkt.id = id as u64;
        self.outstanding.insert(id, (now, idx, miss));
        self.stats.sent += 1;
        ctx.send(PortId::P0, pkt);
    }

    fn schedule_next(&mut self, ctx: &mut Ctx<'_, Packet>) {
        if self.stopped {
            return;
        }
        if self.rate_pps > 0.0 {
            ctx.schedule_in(Nanos::from_secs_f64(1.0 / self.rate_pps), TAG_SEND);
        } else {
            ctx.schedule_in(Nanos::from_millis(10), TAG_SEND);
        }
    }
}

impl Node<Packet> for DnsClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Packet>) {
        self.schedule_next(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Packet>, timer: Timer) {
        if timer.tag == TAG_SEND {
            if self.stopped {
                return;
            }
            if self.rate_pps > 0.0 {
                self.send_one(ctx);
            }
            self.schedule_next(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Packet>, _port: PortId, msg: Packet) {
        let Ok(frame) = UdpFrame::parse(&msg) else {
            return;
        };
        let Ok(response) = DnsResponse::decode(frame.payload) else {
            return;
        };
        let Some((sent_at, idx, was_miss)) = self.outstanding.remove(&response.id) else {
            return;
        };
        let now = ctx.now();
        self.stats.received += 1;
        let lat = (now - sent_at).as_nanos();
        self.latency.record(lat);
        self.window_latency.record(lat);
        match response.rcode {
            Rcode::NoError => {
                if self.verify {
                    let ok = !was_miss
                        && response
                            .answers
                            .first()
                            .is_some_and(|&(a, _)| a == Zone::synthetic_addr(idx));
                    if !ok {
                        self.stats.wrong += 1;
                    }
                }
            }
            Rcode::NxDomain => {
                self.stats.nxdomain += 1;
                if self.verify && !was_miss {
                    self.stats.wrong += 1;
                }
            }
            _ => {
                if self.verify {
                    self.stats.wrong += 1;
                }
            }
        }
    }

    fn label(&self) -> String {
        "dns-client".to_string()
    }

    impl_node_any!();
}
