//! The simulation's network frame.

use std::net::Ipv4Addr;

use bytes::Bytes;
use inc_sim::{Nanos, Payload};

use crate::addr::MacAddr;
use crate::wire::{
    EthernetHeader, Ipv4Header, UdpHeader, WireError, ETHERTYPE_IPV4, IPPROTO_UDP, IPV4_HLEN,
    UDP_HLEN,
};

/// An Ethernet frame in flight, with measurement metadata.
///
/// The frame bytes are reference-counted ([`Bytes`]), so forwarding a
/// packet through switches and classifiers does not copy the payload.
/// `sent_at` plays the role of the paper's Endace DAG capture timestamps:
/// it is stamped by traffic sources and read by sinks to measure latency.
#[derive(Clone, Debug)]
pub struct Packet {
    /// The complete frame, starting at the Ethernet header.
    pub data: Bytes,
    /// When the original request left its source (for latency measurement).
    pub sent_at: Nanos,
    /// Source-assigned identifier correlating requests and replies.
    pub id: u64,
}

impl Payload for Packet {
    fn wire_bytes(&self) -> usize {
        // Frame + preamble/SFD (8) + FCS (4) + minimum IFG (12): the
        // per-packet cost on the wire, which is what line-rate limits see.
        self.data.len() + 24
    }
}

impl Packet {
    /// Wraps raw frame bytes.
    pub fn from_bytes(data: Bytes) -> Self {
        Packet {
            data,
            sent_at: Nanos::ZERO,
            id: 0,
        }
    }

    /// Frame length in bytes (excluding preamble/FCS/IFG overhead).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` for an empty buffer (never valid on the wire).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// A fully parsed UDP-over-IPv4-over-Ethernet view of a [`Packet`].
#[derive(Clone, Debug)]
pub struct UdpFrame<'a> {
    /// Ethernet header.
    pub eth: EthernetHeader,
    /// IPv4 header.
    pub ip: Ipv4Header,
    /// UDP header.
    pub udp: UdpHeader,
    /// Application payload.
    pub payload: &'a [u8],
}

impl<'a> UdpFrame<'a> {
    /// Parses and verifies all three headers of `packet`.
    pub fn parse(packet: &'a Packet) -> Result<Self, WireError> {
        let (eth, rest) = EthernetHeader::decode(&packet.data)?;
        if eth.ethertype != ETHERTYPE_IPV4 {
            return Err(WireError::WrongEtherType(eth.ethertype));
        }
        let (ip, rest) = Ipv4Header::decode(rest)?;
        if ip.protocol != IPPROTO_UDP {
            return Err(WireError::WrongProtocol(ip.protocol));
        }
        let (udp, payload) = UdpHeader::decode(ip.src, ip.dst, rest)?;
        Ok(UdpFrame {
            eth,
            ip,
            udp,
            payload,
        })
    }
}

/// Endpoint identity used when building frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Endpoint {
    /// MAC address.
    pub mac: MacAddr,
    /// IPv4 address.
    pub ip: Ipv4Addr,
    /// UDP port.
    pub port: u16,
}

impl Endpoint {
    /// Builds a deterministic endpoint from a small integer and port,
    /// convenient for topology construction.
    pub fn host(n: u32, port: u16) -> Self {
        let b = n.to_be_bytes();
        Endpoint {
            mac: MacAddr::local(n),
            ip: Ipv4Addr::new(10, b[1], b[2], b[3]),
            port,
        }
    }
}

/// Builds a complete UDP frame from `src` to `dst`.
///
/// # Examples
///
/// ```
/// use inc_net::{build_udp, Endpoint, UdpFrame};
///
/// let a = Endpoint::host(1, 4000);
/// let b = Endpoint::host(2, 11211);
/// let pkt = build_udp(a, b, b"get foo");
/// let frame = UdpFrame::parse(&pkt).unwrap();
/// assert_eq!(frame.udp.dst_port, 11211);
/// assert_eq!(frame.payload, b"get foo");
/// ```
pub fn build_udp(src: Endpoint, dst: Endpoint, payload: &[u8]) -> Packet {
    build_udp_with_ident(src, dst, payload, 0)
}

/// Like [`build_udp`] with an explicit IPv4 identification field.
///
/// # Panics
///
/// Panics if `payload` exceeds the 65,507-byte UDP maximum (fragmentation
/// is not modelled; the paper's applications use small datagrams).
pub fn build_udp_with_ident(src: Endpoint, dst: Endpoint, payload: &[u8], ident: u16) -> Packet {
    assert!(
        payload.len() <= 65_507,
        "payload of {} bytes does not fit one UDP datagram",
        payload.len()
    );
    let total_len = (IPV4_HLEN + UDP_HLEN + payload.len()) as u16;
    let mut buf = Vec::with_capacity(total_len as usize + 14);
    EthernetHeader {
        dst: dst.mac,
        src: src.mac,
        ethertype: ETHERTYPE_IPV4,
    }
    .encode(&mut buf);
    Ipv4Header {
        src: src.ip,
        dst: dst.ip,
        protocol: IPPROTO_UDP,
        ttl: 64,
        total_len,
        ident,
    }
    .encode(&mut buf);
    UdpHeader::encode_with_payload(src.port, dst.port, src.ip, dst.ip, payload, &mut buf);
    Packet::from_bytes(Bytes::from(buf))
}

/// Builds the reply to a parsed request: swaps MAC/IP/ports and carries a
/// new payload. This is exactly what the in-network services do (§10: the
/// request "enters as the request, and comes out as the reply").
pub fn build_reply(request: &UdpFrame<'_>, payload: &[u8]) -> Packet {
    let src = Endpoint {
        mac: request.eth.dst,
        ip: request.ip.dst,
        port: request.udp.dst_port,
    };
    let dst = Endpoint {
        mac: request.eth.src,
        ip: request.ip.src,
        port: request.udp.src_port,
    };
    build_udp(src, dst, payload)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely
mod tests {
    use super::*;

    #[test]
    fn build_parse_round_trip() {
        let a = Endpoint::host(1, 1234);
        let b = Endpoint::host(2, 53);
        let pkt = build_udp(a, b, b"query");
        let f = UdpFrame::parse(&pkt).unwrap();
        assert_eq!(f.eth.src, a.mac);
        assert_eq!(f.eth.dst, b.mac);
        assert_eq!(f.ip.src, a.ip);
        assert_eq!(f.ip.dst, b.ip);
        assert_eq!(f.udp.src_port, 1234);
        assert_eq!(f.udp.dst_port, 53);
        assert_eq!(f.payload, b"query");
    }

    #[test]
    fn reply_swaps_direction() {
        let a = Endpoint::host(1, 1234);
        let b = Endpoint::host(2, 53);
        let req = build_udp(a, b, b"query");
        let parsed = UdpFrame::parse(&req).unwrap();
        let rep = build_reply(&parsed, b"answer");
        let f = UdpFrame::parse(&rep).unwrap();
        assert_eq!(f.eth.dst, a.mac);
        assert_eq!(f.ip.dst, a.ip);
        assert_eq!(f.udp.dst_port, 1234);
        assert_eq!(f.udp.src_port, 53);
        assert_eq!(f.payload, b"answer");
    }

    #[test]
    fn non_ip_frame_rejected() {
        let mut buf = Vec::new();
        EthernetHeader {
            dst: MacAddr::local(1),
            src: MacAddr::local(2),
            ethertype: 0x0806, // ARP
        }
        .encode(&mut buf);
        let pkt = Packet::from_bytes(Bytes::from(buf));
        assert_eq!(
            UdpFrame::parse(&pkt).unwrap_err(),
            WireError::WrongEtherType(0x0806)
        );
    }

    #[test]
    fn wire_bytes_include_overhead() {
        let pkt = build_udp(Endpoint::host(1, 1), Endpoint::host(2, 2), &[0u8; 18]);
        // 14 (eth) + 20 (ip) + 8 (udp) + 18 payload = 60; +24 overhead.
        assert_eq!(pkt.len(), 60);
        assert_eq!(pkt.wire_bytes(), 84);
    }

    #[test]
    fn endpoint_host_deterministic() {
        assert_eq!(Endpoint::host(3, 9), Endpoint::host(3, 9));
        assert_ne!(Endpoint::host(3, 9).ip, Endpoint::host(4, 9).ip);
    }
}
