//! Packet classification.
//!
//! LaKe and (after the paper's modification) Emu DNS contain a packet
//! classifier that splits application traffic from normal NIC traffic
//! (Figure 1, §3.3). The same classifier hosts the paper's
//! *network-controlled* on-demand logic, which §9.1 implements "in 40
//! lines of code within the FPGA's classifier module". This module
//! provides that classifier as an ordered rule table over parsed headers.

use crate::packet::{Packet, UdpFrame};

/// A classification decision. Class 0 is conventionally "normal traffic".
pub type Class = u32;

/// The conventional class for non-application (pass-through) traffic.
pub const CLASS_NORMAL: Class = 0;

/// One match rule; `None` fields are wildcards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Match {
    /// Match the UDP destination port.
    pub udp_dst_port: Option<u16>,
    /// Match the UDP source port.
    pub udp_src_port: Option<u16>,
    /// Match the IPv4 destination address.
    pub ipv4_dst: Option<std::net::Ipv4Addr>,
}

impl Match {
    /// A rule matching a UDP destination port.
    pub fn udp_dst(port: u16) -> Self {
        Match {
            udp_dst_port: Some(port),
            ..Default::default()
        }
    }

    /// A rule matching either UDP port (requests to, or replies from, a
    /// service port).
    pub fn udp_either(port: u16) -> (Self, Self) {
        (
            Match::udp_dst(port),
            Match {
                udp_src_port: Some(port),
                ..Default::default()
            },
        )
    }

    fn matches(&self, frame: &UdpFrame<'_>) -> bool {
        if let Some(p) = self.udp_dst_port {
            if frame.udp.dst_port != p {
                return false;
            }
        }
        if let Some(p) = self.udp_src_port {
            if frame.udp.src_port != p {
                return false;
            }
        }
        if let Some(ip) = self.ipv4_dst {
            if frame.ip.dst != ip {
                return false;
            }
        }
        true
    }
}

/// An ordered first-match-wins rule table.
///
/// Packets that are not valid UDP/IPv4 frames always classify as
/// [`CLASS_NORMAL`] — the hardware forwards what it cannot parse.
///
/// # Examples
///
/// ```
/// use inc_net::{build_udp, Classifier, Endpoint, Match, CLASS_NORMAL};
///
/// const CLASS_KVS: u32 = 1;
/// let mut c = Classifier::new();
/// c.add_rule(Match::udp_dst(11211), CLASS_KVS);
///
/// let kvs = build_udp(Endpoint::host(1, 999), Endpoint::host(2, 11211), b"get k");
/// let other = build_udp(Endpoint::host(1, 999), Endpoint::host(2, 80), b"x");
/// assert_eq!(c.classify(&kvs), CLASS_KVS);
/// assert_eq!(c.classify(&other), CLASS_NORMAL);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Classifier {
    rules: Vec<(Match, Class)>,
    hits: Vec<u64>,
    misses: u64,
}

impl Classifier {
    /// Creates an empty classifier (everything is [`CLASS_NORMAL`]).
    pub fn new() -> Self {
        Classifier::default()
    }

    /// Appends a rule; earlier rules take precedence.
    pub fn add_rule(&mut self, m: Match, class: Class) -> &mut Self {
        self.rules.push((m, class));
        self.hits.push(0);
        self
    }

    /// Removes all rules assigning `class`.
    pub fn remove_class(&mut self, class: Class) {
        let keep: Vec<bool> = self.rules.iter().map(|&(_, c)| c != class).collect();
        // `retain` visits exactly `keep.len()` elements, so the
        // iterator never runs dry; `unwrap_or(false)` keeps the path
        // panic-free under `clippy::unwrap_used` all the same.
        let mut it = keep.iter();
        self.rules.retain(|_| it.next().copied().unwrap_or(false));
        let mut it = keep.iter();
        self.hits.retain(|_| it.next().copied().unwrap_or(false));
    }

    /// Classifies a packet, updating hit counters.
    pub fn classify_mut(&mut self, packet: &Packet) -> Class {
        match UdpFrame::parse(packet) {
            Ok(frame) => {
                for (i, (m, class)) in self.rules.iter().enumerate() {
                    if m.matches(&frame) {
                        self.hits[i] += 1;
                        return *class;
                    }
                }
                self.misses += 1;
                CLASS_NORMAL
            }
            Err(_) => {
                self.misses += 1;
                CLASS_NORMAL
            }
        }
    }

    /// Classifies without touching counters.
    pub fn classify(&self, packet: &Packet) -> Class {
        match UdpFrame::parse(packet) {
            Ok(frame) => self
                .rules
                .iter()
                .find(|(m, _)| m.matches(&frame))
                .map(|&(_, c)| c)
                .unwrap_or(CLASS_NORMAL),
            Err(_) => CLASS_NORMAL,
        }
    }

    /// Returns per-rule hit counts (parallel to insertion order).
    pub fn hits(&self) -> &[u64] {
        &self.hits
    }

    /// Returns how many packets matched no rule.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns `true` if no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely
mod tests {
    use super::*;
    use crate::packet::{build_udp, Endpoint};

    fn pkt(dst_port: u16) -> Packet {
        build_udp(Endpoint::host(1, 555), Endpoint::host(2, dst_port), b"p")
    }

    #[test]
    fn first_match_wins() {
        let mut c = Classifier::new();
        c.add_rule(Match::udp_dst(53), 7);
        c.add_rule(Match::default(), 9); // wildcard catch-all
        assert_eq!(c.classify(&pkt(53)), 7);
        assert_eq!(c.classify(&pkt(80)), 9);
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let mut c = Classifier::new();
        c.add_rule(Match::udp_dst(11211), 1);
        c.classify_mut(&pkt(11211));
        c.classify_mut(&pkt(11211));
        c.classify_mut(&pkt(80));
        assert_eq!(c.hits(), &[2]);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn either_direction_rules() {
        let (req, rep) = Match::udp_either(53);
        let mut c = Classifier::new();
        c.add_rule(req, 3);
        c.add_rule(rep, 3);
        let request = build_udp(Endpoint::host(1, 555), Endpoint::host(2, 53), b"q");
        let reply = build_udp(Endpoint::host(2, 53), Endpoint::host(1, 555), b"r");
        assert_eq!(c.classify(&request), 3);
        assert_eq!(c.classify(&reply), 3);
    }

    #[test]
    fn unparseable_is_normal() {
        let c = Classifier::new();
        let junk = Packet::from_bytes(bytes::Bytes::from_static(b"short"));
        assert_eq!(c.classify(&junk), CLASS_NORMAL);
    }

    #[test]
    fn remove_class_drops_rules() {
        let mut c = Classifier::new();
        c.add_rule(Match::udp_dst(1), 1);
        c.add_rule(Match::udp_dst(2), 2);
        c.add_rule(Match::udp_dst(3), 1);
        c.remove_class(1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.classify(&pkt(1)), CLASS_NORMAL);
        assert_eq!(c.classify(&pkt(2)), 2);
    }

    #[test]
    fn ipv4_dst_match() {
        let mut c = Classifier::new();
        let target = Endpoint::host(2, 53);
        c.add_rule(
            Match {
                ipv4_dst: Some(target.ip),
                ..Default::default()
            },
            5,
        );
        assert_eq!(c.classify(&pkt(53)), 5);
        let other = build_udp(Endpoint::host(1, 555), Endpoint::host(9, 53), b"q");
        assert_eq!(c.classify(&other), CLASS_NORMAL);
    }
}
