//! Ethernet II, IPv4 and UDP wire formats.
//!
//! All three applications in the paper are UDP-based (§3.4); this module
//! implements real header encoding/decoding with checksums so that the
//! hardware and software models exchange byte-accurate frames.

use std::net::Ipv4Addr;

use crate::addr::MacAddr;

/// Errors decoding a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the header demands.
    Truncated,
    /// An EtherType other than the one expected by the caller.
    WrongEtherType(u16),
    /// An IP protocol other than the one expected by the caller.
    WrongProtocol(u8),
    /// The IPv4 header checksum does not verify.
    BadIpChecksum,
    /// The UDP checksum is present and does not verify.
    BadUdpChecksum,
    /// An unsupported IPv4 header length (options are not supported).
    BadIhl(u8),
    /// The UDP length field disagrees with the buffer.
    BadLength,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::WrongEtherType(t) => write!(f, "unexpected ethertype 0x{t:04x}"),
            WireError::WrongProtocol(p) => write!(f, "unexpected ip protocol {p}"),
            WireError::BadIpChecksum => write!(f, "bad ipv4 header checksum"),
            WireError::BadUdpChecksum => write!(f, "bad udp checksum"),
            WireError::BadIhl(v) => write!(f, "unsupported ihl {v}"),
            WireError::BadLength => write!(f, "udp length mismatch"),
        }
    }
}

impl std::error::Error for WireError {}

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;

/// IP protocol number for UDP.
pub const IPPROTO_UDP: u8 = 17;

/// Length of an Ethernet II header.
pub const ETH_HLEN: usize = 14;

/// Length of an IPv4 header without options.
pub const IPV4_HLEN: usize = 20;

/// Length of a UDP header.
pub const UDP_HLEN: usize = 8;

/// Combined length of the three headers this stack uses.
pub const UDP_STACK_HLEN: usize = ETH_HLEN + IPV4_HLEN + UDP_HLEN;

/// Reads `N` bytes of `buf` starting at `at` as a fixed-size array.
///
/// The decode paths below are panic-free by contract (`inc-lint`
/// rule `panicking-decode`): every access goes through `get`, and a
/// short buffer surfaces as [`WireError::Truncated`] rather than an
/// out-of-bounds slice panic.
fn take<const N: usize>(buf: &[u8], at: usize) -> Result<[u8; N], WireError> {
    buf.get(at..at + N)
        .and_then(|s| <[u8; N]>::try_from(s).ok())
        .ok_or(WireError::Truncated)
}

/// A parsed Ethernet II header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EthernetHeader {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// EtherType of the payload.
    pub ethertype: u16,
}

impl EthernetHeader {
    /// Encodes the header into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.dst.0);
        out.extend_from_slice(&self.src.0);
        out.extend_from_slice(&self.ethertype.to_be_bytes());
    }

    /// Decodes a header from the front of `buf`.
    pub fn decode(buf: &[u8]) -> Result<(Self, &[u8]), WireError> {
        let dst = MacAddr(take::<6>(buf, 0)?);
        let src = MacAddr(take::<6>(buf, 6)?);
        let ethertype = u16::from_be_bytes(take::<2>(buf, 12)?);
        let rest = buf.get(ETH_HLEN..).ok_or(WireError::Truncated)?;
        Ok((
            EthernetHeader {
                dst,
                src,
                ethertype,
            },
            rest,
        ))
    }
}

/// A parsed IPv4 header (no options).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Payload protocol.
    pub protocol: u8,
    /// Time to live.
    pub ttl: u8,
    /// Total length (header + payload) as carried on the wire.
    pub total_len: u16,
    /// Identification field.
    pub ident: u16,
}

/// Computes the Internet checksum (RFC 1071) over `data`.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

impl Ipv4Header {
    /// Encodes the header (with a valid checksum) into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.push(0x45); // Version 4, IHL 5.
        out.push(0); // DSCP/ECN.
        out.extend_from_slice(&self.total_len.to_be_bytes());
        out.extend_from_slice(&self.ident.to_be_bytes());
        out.extend_from_slice(&[0x40, 0]); // Flags: DF; fragment offset 0.
        out.push(self.ttl);
        out.push(self.protocol);
        out.extend_from_slice(&[0, 0]); // Checksum placeholder.
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.dst.octets());
        let csum = internet_checksum(&out[start..start + IPV4_HLEN]);
        out[start + 10..start + 12].copy_from_slice(&csum.to_be_bytes());
    }

    /// Decodes and checksum-verifies a header from the front of `buf`.
    pub fn decode(buf: &[u8]) -> Result<(Self, &[u8]), WireError> {
        let header = buf.get(..IPV4_HLEN).ok_or(WireError::Truncated)?;
        let v_ihl = *header.first().ok_or(WireError::Truncated)?;
        let ihl = v_ihl & 0x0f;
        if v_ihl >> 4 != 4 || ihl != 5 {
            return Err(WireError::BadIhl(v_ihl));
        }
        if internet_checksum(header) != 0 {
            return Err(WireError::BadIpChecksum);
        }
        let total_len = u16::from_be_bytes(take::<2>(header, 2)?);
        if (total_len as usize) < IPV4_HLEN || total_len as usize > buf.len() {
            return Err(WireError::BadLength);
        }
        let [ttl, protocol] = take::<2>(header, 8)?;
        let hdr = Ipv4Header {
            src: Ipv4Addr::from(take::<4>(header, 12)?),
            dst: Ipv4Addr::from(take::<4>(header, 16)?),
            protocol,
            ttl,
            total_len,
            ident: u16::from_be_bytes(take::<2>(header, 4)?),
        };
        let payload = buf
            .get(IPV4_HLEN..total_len as usize)
            .ok_or(WireError::BadLength)?;
        Ok((hdr, payload))
    }
}

/// A parsed UDP header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length including the 8-byte header.
    pub length: u16,
    /// Checksum (0 means absent, as UDP over IPv4 permits).
    pub checksum: u16,
}

impl UdpHeader {
    /// Encodes header and payload, computing the checksum over the
    /// pseudo-header as RFC 768 requires.
    pub fn encode_with_payload(
        src_port: u16,
        dst_port: u16,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        payload: &[u8],
        out: &mut Vec<u8>,
    ) {
        let length = (UDP_HLEN + payload.len()) as u16;
        let start = out.len();
        out.extend_from_slice(&src_port.to_be_bytes());
        out.extend_from_slice(&dst_port.to_be_bytes());
        out.extend_from_slice(&length.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // Checksum placeholder.
        out.extend_from_slice(payload);
        let csum = udp_checksum(src_ip, dst_ip, &out[start..]);
        // RFC 768: a computed zero checksum is transmitted as 0xffff.
        let csum = if csum == 0 { 0xffff } else { csum };
        out[start + 6..start + 8].copy_from_slice(&csum.to_be_bytes());
    }

    /// Decodes and (if present) checksum-verifies a datagram.
    ///
    /// Returns the header and the payload slice.
    pub fn decode(
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        buf: &[u8],
    ) -> Result<(Self, &[u8]), WireError> {
        let header = buf.get(..UDP_HLEN).ok_or(WireError::Truncated)?;
        let length = u16::from_be_bytes(take::<2>(header, 4)?) as usize;
        if length < UDP_HLEN || length > buf.len() {
            return Err(WireError::BadLength);
        }
        let hdr = UdpHeader {
            src_port: u16::from_be_bytes(take::<2>(header, 0)?),
            dst_port: u16::from_be_bytes(take::<2>(header, 2)?),
            length: length as u16,
            checksum: u16::from_be_bytes(take::<2>(header, 6)?),
        };
        let datagram = buf.get(..length).ok_or(WireError::BadLength)?;
        if hdr.checksum != 0 && udp_checksum(src_ip, dst_ip, datagram) != 0 {
            return Err(WireError::BadUdpChecksum);
        }
        let payload = buf.get(UDP_HLEN..length).ok_or(WireError::BadLength)?;
        Ok((hdr, payload))
    }
}

fn udp_checksum(src_ip: Ipv4Addr, dst_ip: Ipv4Addr, datagram: &[u8]) -> u16 {
    let mut pseudo = Vec::with_capacity(12 + datagram.len());
    pseudo.extend_from_slice(&src_ip.octets());
    pseudo.extend_from_slice(&dst_ip.octets());
    pseudo.push(0);
    pseudo.push(IPPROTO_UDP);
    pseudo.extend_from_slice(&(datagram.len() as u16).to_be_bytes());
    pseudo.extend_from_slice(datagram);
    internet_checksum(&pseudo)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely
mod tests {
    use super::*;

    #[test]
    fn ethernet_round_trip() {
        let hdr = EthernetHeader {
            dst: MacAddr::local(1),
            src: MacAddr::local(2),
            ethertype: ETHERTYPE_IPV4,
        };
        let mut buf = Vec::new();
        hdr.encode(&mut buf);
        buf.extend_from_slice(b"payload");
        let (got, rest) = EthernetHeader::decode(&buf).unwrap();
        assert_eq!(got, hdr);
        assert_eq!(rest, b"payload");
    }

    #[test]
    fn ethernet_truncated() {
        assert_eq!(
            EthernetHeader::decode(&[0u8; 13]),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn internet_checksum_known_vector() {
        // Example from RFC 1071 §3: checksum of the sequence is its
        // complement-folded sum.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let c = internet_checksum(&data);
        assert_eq!(c, !0xddf2u16);
    }

    #[test]
    fn ipv4_round_trip_and_verify() {
        let hdr = Ipv4Header {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 0, 0, 2),
            protocol: IPPROTO_UDP,
            ttl: 64,
            total_len: (IPV4_HLEN + 4) as u16,
            ident: 0x1234,
        };
        let mut buf = Vec::new();
        hdr.encode(&mut buf);
        buf.extend_from_slice(&[1, 2, 3, 4]);
        let (got, payload) = Ipv4Header::decode(&buf).unwrap();
        assert_eq!(got, hdr);
        assert_eq!(payload, &[1, 2, 3, 4]);
    }

    #[test]
    fn ipv4_detects_corruption() {
        let hdr = Ipv4Header {
            src: Ipv4Addr::new(192, 168, 1, 1),
            dst: Ipv4Addr::new(192, 168, 1, 2),
            protocol: IPPROTO_UDP,
            ttl: 64,
            total_len: IPV4_HLEN as u16,
            ident: 0,
        };
        let mut buf = Vec::new();
        hdr.encode(&mut buf);
        buf[12] ^= 0xff; // Corrupt source IP.
        assert_eq!(Ipv4Header::decode(&buf), Err(WireError::BadIpChecksum));
    }

    #[test]
    fn udp_round_trip_with_checksum() {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let mut buf = Vec::new();
        UdpHeader::encode_with_payload(1111, 53, src, dst, b"hello dns", &mut buf);
        let (hdr, payload) = UdpHeader::decode(src, dst, &buf).unwrap();
        assert_eq!(hdr.src_port, 1111);
        assert_eq!(hdr.dst_port, 53);
        assert_eq!(payload, b"hello dns");
        assert_ne!(hdr.checksum, 0);
    }

    #[test]
    fn udp_detects_payload_corruption() {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let mut buf = Vec::new();
        UdpHeader::encode_with_payload(1, 2, src, dst, b"data!", &mut buf);
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        assert_eq!(
            UdpHeader::decode(src, dst, &buf),
            Err(WireError::BadUdpChecksum)
        );
    }

    #[test]
    fn udp_zero_checksum_accepted() {
        let src = Ipv4Addr::new(1, 1, 1, 1);
        let dst = Ipv4Addr::new(2, 2, 2, 2);
        // Hand-build a datagram with checksum 0 (not verified).
        let mut buf = Vec::new();
        buf.extend_from_slice(&100u16.to_be_bytes());
        buf.extend_from_slice(&200u16.to_be_bytes());
        buf.extend_from_slice(&((UDP_HLEN + 2) as u16).to_be_bytes());
        buf.extend_from_slice(&[0, 0]);
        buf.extend_from_slice(&[9, 9]);
        let (hdr, payload) = UdpHeader::decode(src, dst, &buf).unwrap();
        assert_eq!(hdr.checksum, 0);
        assert_eq!(payload, &[9, 9]);
    }

    #[test]
    fn udp_bad_length_rejected() {
        let src = Ipv4Addr::new(1, 1, 1, 1);
        let dst = Ipv4Addr::new(2, 2, 2, 2);
        let mut buf = vec![0u8; UDP_HLEN];
        buf[4..6].copy_from_slice(&3u16.to_be_bytes()); // length < 8
        assert_eq!(UdpHeader::decode(src, dst, &buf), Err(WireError::BadLength));
        buf[4..6].copy_from_slice(&100u16.to_be_bytes()); // length > buffer
        assert_eq!(UdpHeader::decode(src, dst, &buf), Err(WireError::BadLength));
    }
}
