//! Link-layer addressing.

use core::fmt;
use core::str::FromStr;

/// A 48-bit IEEE 802 MAC address.
///
/// # Examples
///
/// ```
/// use inc_net::MacAddr;
///
/// let mac: MacAddr = "02:00:00:00:00:01".parse().unwrap();
/// assert_eq!(mac.to_string(), "02:00:00:00:00:01");
/// assert!(!mac.is_broadcast());
/// assert!(MacAddr::BROADCAST.is_broadcast());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// The all-zero address.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Builds a locally administered unicast address from a small integer,
    /// convenient for tests and topology builders.
    pub const fn local(n: u32) -> MacAddr {
        let b = n.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// Returns `true` for the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == MacAddr::BROADCAST
    }

    /// Returns `true` for group (multicast/broadcast) addresses.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Returns the raw octets.
    pub fn octets(&self) -> [u8; 6] {
        self.0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = &self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Error parsing a MAC address from text.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MacParseError;

impl fmt::Display for MacParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expected six ':'-separated hex octets")
    }
}

impl std::error::Error for MacParseError {}

impl FromStr for MacAddr {
    type Err = MacParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut out = [0u8; 6];
        let mut parts = s.split(':');
        for slot in &mut out {
            let part = parts.next().ok_or(MacParseError)?;
            if part.len() != 2 {
                return Err(MacParseError);
            }
            *slot = u8::from_str_radix(part, 16).map_err(|_| MacParseError)?;
        }
        if parts.next().is_some() {
            return Err(MacParseError);
        }
        Ok(MacAddr(out))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely
mod tests {
    use super::*;

    #[test]
    fn parse_display_round_trip() {
        for s in [
            "00:11:22:33:44:55",
            "ff:ff:ff:ff:ff:ff",
            "02:00:00:00:00:2a",
        ] {
            let mac: MacAddr = s.parse().unwrap();
            assert_eq!(mac.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<MacAddr>().is_err());
        assert!("00:11:22:33:44".parse::<MacAddr>().is_err());
        assert!("00:11:22:33:44:55:66".parse::<MacAddr>().is_err());
        assert!("00:11:22:33:44:gg".parse::<MacAddr>().is_err());
        assert!("0:11:22:33:44:55".parse::<MacAddr>().is_err());
    }

    #[test]
    fn multicast_bit() {
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::local(1).is_multicast());
        assert!(MacAddr([0x01, 0, 0x5e, 0, 0, 1]).is_multicast());
    }

    #[test]
    fn local_addresses_distinct() {
        assert_ne!(MacAddr::local(1), MacAddr::local(2));
        assert_eq!(MacAddr::local(7), MacAddr::local(7));
    }
}
