//! A learning L2 switch with steerable forwarding rules.
//!
//! Beyond normal MAC learning, the switch exposes *steering rules* that
//! override the forwarding decision for matching packets. §9.2 uses
//! exactly this: "the controller modifies switch forwarding rules to send
//! messages to the new leader" during a Paxos leader shift.

use std::collections::HashMap;

use inc_sim::{impl_node_any, Ctx, Node, PortId};

use crate::addr::MacAddr;
use crate::classifier::Match;
use crate::packet::{Packet, UdpFrame};

/// A learning Ethernet switch simulation node.
///
/// Ports `0..ports` are expected to be connected by the harness; flooding
/// to an unconnected port is counted by the simulator as unrouted.
#[derive(Debug)]
pub struct L2Switch {
    ports: u16,
    table: HashMap<MacAddr, PortId>,
    steer: Vec<(Match, PortId)>,
    forwarded: u64,
    flooded: u64,
    steered: u64,
    /// Fixed power draw attributed to the switch fabric, watts.
    power_w: f64,
}

impl L2Switch {
    /// Creates a switch with `ports` ports and zero attributed power.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    pub fn new(ports: u16) -> Self {
        assert!(ports > 0, "switch needs ports");
        L2Switch {
            ports,
            table: HashMap::new(),
            steer: Vec::new(),
            forwarded: 0,
            flooded: 0,
            steered: 0,
            power_w: 0.0,
        }
    }

    /// Sets the fixed power attributed to this switch.
    pub fn with_power(mut self, watts: f64) -> Self {
        self.power_w = watts;
        self
    }

    /// Installs a steering rule: packets matching `m` egress on `port`,
    /// bypassing MAC lookup. Later rules take precedence (so installing a
    /// replacement does not require removal).
    pub fn steer(&mut self, m: Match, port: PortId) {
        self.steer.push((m, port));
    }

    /// Removes every steering rule that egresses on `port`.
    pub fn unsteer_port(&mut self, port: PortId) {
        self.steer.retain(|&(_, p)| p != port);
    }

    /// Removes all steering rules.
    pub fn clear_steering(&mut self) {
        self.steer.clear();
    }

    /// Returns (forwarded, flooded, steered) packet counts.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.forwarded, self.flooded, self.steered)
    }

    /// Returns the learned MAC table size.
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    fn steering_decision(&self, pkt: &Packet) -> Option<PortId> {
        let frame = UdpFrame::parse(pkt).ok()?;
        // Last matching rule wins: newest steering overrides older.
        self.steer
            .iter()
            .rev()
            .find(|(m, _)| matches_frame(m, &frame))
            .map(|&(_, p)| p)
    }
}

fn matches_frame(m: &Match, frame: &UdpFrame<'_>) -> bool {
    if let Some(p) = m.udp_dst_port {
        if frame.udp.dst_port != p {
            return false;
        }
    }
    if let Some(p) = m.udp_src_port {
        if frame.udp.src_port != p {
            return false;
        }
    }
    if let Some(ip) = m.ipv4_dst {
        if frame.ip.dst != ip {
            return false;
        }
    }
    true
}

impl Node<Packet> for L2Switch {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Packet>, port: PortId, msg: Packet) {
        // Learn the source.
        if let Ok((eth, _)) = crate::wire::EthernetHeader::decode(&msg.data) {
            if !eth.src.is_multicast() {
                self.table.insert(eth.src, port);
            }
            // Steering overrides normal forwarding.
            if let Some(out) = self.steering_decision(&msg) {
                if out != port {
                    self.steered += 1;
                    ctx.send(out, msg);
                }
                return;
            }
            if !eth.dst.is_multicast() {
                if let Some(&out) = self.table.get(&eth.dst) {
                    if out != port {
                        self.forwarded += 1;
                        ctx.send(out, msg);
                    }
                    return;
                }
            }
            // Unknown unicast or multicast: flood.
            self.flooded += 1;
            for p in 0..self.ports {
                let out = PortId(p);
                if out != port {
                    ctx.send(out, msg.clone());
                }
            }
        }
    }

    fn power_w(&self, _now: inc_sim::Nanos) -> f64 {
        self.power_w
    }

    fn label(&self) -> String {
        format!("l2-switch({} ports)", self.ports)
    }

    impl_node_any!();
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely
mod tests {
    use super::*;
    use crate::packet::{build_udp, Endpoint};
    use inc_sim::{LinkSpec, Nanos, Simulator};

    /// A station that records what it receives and can send on request.
    #[derive(Default)]
    struct Station {
        received: Vec<Packet>,
    }

    impl Node<Packet> for Station {
        fn on_message(&mut self, _ctx: &mut Ctx<'_, Packet>, _port: PortId, msg: Packet) {
            self.received.push(msg);
        }
        impl_node_any!();
    }

    fn three_station_net() -> (Simulator<Packet>, inc_sim::NodeId, Vec<inc_sim::NodeId>) {
        let mut sim = Simulator::new(0);
        let sw = sim.add_node(L2Switch::new(3));
        let mut hosts = Vec::new();
        for i in 0..3u16 {
            let h = sim.add_node(Station::default());
            sim.connect_duplex(h, PortId::P0, sw, PortId(i), LinkSpec::ideal());
            hosts.push(h);
        }
        (sim, sw, hosts)
    }

    fn send(sim: &mut Simulator<Packet>, from: inc_sim::NodeId, pkt: Packet) {
        sim.with_node_ctx::<Station, _>(from, |_n, ctx| ctx.send(PortId::P0, pkt));
    }

    #[test]
    fn floods_then_learns() {
        let (mut sim, sw, hosts) = three_station_net();
        sim.run_until(Nanos::from_millis(1));
        let h0 = Endpoint::host(0, 100);
        let h1 = Endpoint::host(1, 100);
        // First packet to unknown MAC floods to hosts 1 and 2.
        send(&mut sim, hosts[0], build_udp(h0, h1, b"a"));
        sim.run_until(Nanos::from_millis(2));
        assert_eq!(sim.node_ref::<Station>(hosts[1]).received.len(), 1);
        assert_eq!(sim.node_ref::<Station>(hosts[2]).received.len(), 1);
        // Reply teaches the switch h1's port; then traffic is unicast.
        send(&mut sim, hosts[1], build_udp(h1, h0, b"b"));
        sim.run_until(Nanos::from_millis(3));
        send(&mut sim, hosts[0], build_udp(h0, h1, b"c"));
        sim.run_until(Nanos::from_millis(4));
        assert_eq!(sim.node_ref::<Station>(hosts[1]).received.len(), 2);
        assert_eq!(sim.node_ref::<Station>(hosts[2]).received.len(), 1);
        // Only "a" flooded; "b" and "c" were unicast after learning.
        let (fwd, flooded, _) = sim.node_ref::<L2Switch>(sw).counters();
        assert_eq!(flooded, 1);
        assert_eq!(fwd, 2);
    }

    #[test]
    fn steering_overrides_mac_table() {
        let (mut sim, sw, hosts) = three_station_net();
        sim.run_until(Nanos::from_millis(1));
        let h0 = Endpoint::host(0, 100);
        let h1 = Endpoint::host(1, 5000);
        // Teach the switch where h1 is.
        send(&mut sim, hosts[1], build_udp(h1, h0, b"hello"));
        sim.run_until(Nanos::from_millis(2));
        // Steer all port-5000 traffic to host 2 instead.
        sim.node_mut::<L2Switch>(sw)
            .steer(Match::udp_dst(5000), PortId(2));
        send(&mut sim, hosts[0], build_udp(h0, h1, b"to-leader"));
        sim.run_until(Nanos::from_millis(3));
        // h2 received the flood of "hello" plus the steered packet.
        let h2_rx = &sim.node_ref::<Station>(hosts[2]).received;
        assert_eq!(h2_rx.len(), 2);
        let steered_pkt = UdpFrame::parse(h2_rx.last().unwrap()).unwrap();
        assert_eq!(steered_pkt.payload, b"to-leader");
        // h1 never saw the steered packet despite being its MAC target.
        assert_eq!(sim.node_ref::<Station>(hosts[1]).received.len(), 0);
        let (_, _, steered) = sim.node_ref::<L2Switch>(sw).counters();
        assert_eq!(steered, 1);
    }

    #[test]
    fn last_steering_rule_wins() {
        let mut sw = L2Switch::new(4);
        sw.steer(Match::udp_dst(5000), PortId(1));
        sw.steer(Match::udp_dst(5000), PortId(2));
        let pkt = build_udp(Endpoint::host(0, 9), Endpoint::host(1, 5000), b"x");
        assert_eq!(sw.steering_decision(&pkt), Some(PortId(2)));
        sw.unsteer_port(PortId(2));
        assert_eq!(sw.steering_decision(&pkt), Some(PortId(1)));
    }
}
