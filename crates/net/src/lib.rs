//! Network substrate: real wire formats and switching for the
//! *in-network computing on demand* reproduction.
//!
//! All three of the paper's applications are UDP-based (§3.4). This crate
//! provides byte-accurate Ethernet II / IPv4 / UDP encoding and decoding
//! (with checksums), the [`Packet`] type carried by the simulator, the
//! LaKe-style packet [`Classifier`] that the on-demand network controller
//! lives in, and a steerable learning [`L2Switch`].
//!
//! # Examples
//!
//! ```
//! use inc_net::{build_udp, Endpoint, UdpFrame};
//!
//! let client = Endpoint::host(1, 40000);
//! let server = Endpoint::host(2, 11211);
//! let pkt = build_udp(client, server, b"get key");
//! let frame = UdpFrame::parse(&pkt).unwrap();
//! assert_eq!(frame.udp.dst_port, 11211);
//! ```

pub mod addr;
pub mod classifier;
pub mod packet;
pub mod switch;
pub mod wire;

pub use addr::{MacAddr, MacParseError};
pub use classifier::{Class, Classifier, Match, CLASS_NORMAL};
pub use packet::{build_reply, build_udp, build_udp_with_ident, Endpoint, Packet, UdpFrame};
pub use switch::L2Switch;
pub use wire::{
    internet_checksum, EthernetHeader, Ipv4Header, UdpHeader, WireError, ETHERTYPE_IPV4, ETH_HLEN,
    IPPROTO_UDP, IPV4_HLEN, UDP_HLEN, UDP_STACK_HLEN,
};
