//! Incremental, hierarchical fleet arbitration: dirty-app queues,
//! per-pod arbiters and a global coordinator.
//!
//! The flat [`FleetController`](crate::fleet::FleetController) re-scores
//! every (app × device) pair from
//! scratch each sampling interval — fine for a rack, ruinous for a
//! datacenter. Gray's *Distributed Computing Economics* points the way
//! out: only re-decide when the economics actually change. The
//! [`HierarchicalController`] keeps the flat controller's decision
//! *semantics* (same pricing formulas, same hysteresis, same weighted-DRF
//! fairness — see [`pricing`](crate::fleet)) but restructures each tick
//! as an event-driven pipeline:
//!
//! 1. **Measure & hold** — each app's measured rate updates its *held*
//!    scoring rate only when it moves by more than
//!    [`ArbiterConfig::rate_deadband`] (relative). All scoring, streaks
//!    and gates are computed from held rates, so an app whose load
//!    wobbles inside the band is *economically unchanged*.
//! 2. **Dirty queue** — an app is enqueued (at most once per interval)
//!    when its held rate moved, a hysteresis or starvation gate flipped,
//!    its placement changed last tick, or the occupancy of a device in
//!    its pod changed. Everything else is provably unchanged and is not
//!    re-scored.
//! 3. **Per-pod arbiters** — each pod whose state is dirty re-solves the
//!    greedy benefit-per-capacity knapsack for the apps homed in it,
//!    using one priority heap per device keyed by the flat controller's
//!    score (ties broken identically: app index, hop distance, device
//!    index). Clean pods keep last tick's selection verbatim. Candidate
//!    pruning follows the [`Topology`](inc_hw::Topology) tiers: a pod
//!    arbiter only considers its own pod's devices.
//! 4. **Global coordinator** — handles only what crosses pods: spilling
//!    apps their home pod cannot place, moving (or repatriating)
//!    cross-pod residents, and weighted-DRF fairness claims over the
//!    whole fabric.
//!
//! [`ArbitrationMode::FullRescore`] runs the same pipeline with every
//! pod forced dirty every tick; because both modes share held-rate
//! semantics, an incremental run must produce the *identical* shift
//! sequence — the equivalence property CI pins across proptest seeds.
//! With a single pod and a zero dead band the pipeline degenerates to
//! exactly the flat [`FleetController`](crate::fleet::FleetController)
//! algorithm, which a second
//! property pins.
//!
//! Two deliberate semantic differences from the flat controller at
//! multi-pod scale (documented invariants, see `ARCHITECTURE.md`):
//!
//! * a **cross-pod spill holds tenure against raw scores**: it can be
//!   displaced only by its own sustained low-benefit eviction or by a
//!   fairness claim, never preempted by a host-pod local's raw score;
//! * a **settled home resident migrates only within its pod** — leaving
//!   the pod happens by spilling (no room at home) or by a fairness
//!   hand-over, so the coordinator's cross-pod work stays proportional
//!   to the spill set, not the fleet.

use std::collections::BinaryHeap;

use inc_hw::{DeviceFabric, DeviceId, Placement};
use inc_sim::Nanos;

use crate::fleet::pricing;
use crate::fleet::{
    AdmissionDecision, FleetApp, FleetControllerConfig, FleetSample, FleetScheduler, FleetShift,
    PriceRule, ShiftReason, TenureEstimator, TenurePolicy,
};

/// How the hierarchical pipeline schedules re-scoring work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArbitrationMode {
    /// Every pod is solved every tick (the flat controller's work
    /// profile, kept as the equivalence baseline and for measuring the
    /// incremental speed-up).
    FullRescore,
    /// Only pods with a dirty app or a capacity change are solved; clean
    /// pods reuse their previous selection unchanged.
    Incremental,
}

/// Configuration of the [`HierarchicalController`]: the flat scheduler's
/// economics plus the incremental machinery's knobs.
#[derive(Clone, Copy, Debug)]
pub struct ArbiterConfig {
    /// The shared scheduling economics (floors, hysteresis, stickiness,
    /// fairness, migration cost).
    pub fleet: FleetControllerConfig,
    /// Full re-score or incremental dirty-queue scheduling.
    pub mode: ArbitrationMode,
    /// Relative dead band on measured rates: the held scoring rate
    /// updates only when `|measured − held| > rate_deadband × max(|held|,
    /// 1 pps)` (strictly greater — a wobble landing *exactly* on the band
    /// does not re-score). `0.0` holds nothing: any change dirties.
    pub rate_deadband: f64,
}

impl ArbiterConfig {
    /// Incremental arbitration over the standard fleet economics with a
    /// 5 % rate dead band.
    pub fn standard(interval: Nanos) -> Self {
        ArbiterConfig {
            fleet: FleetControllerConfig::standard(interval),
            mode: ArbitrationMode::Incremental,
            rate_deadband: 0.05,
        }
    }
}

/// Work counters of the hierarchical pipeline: the deterministic
/// evidence that incremental scheduling does less scoring than a full
/// re-score (wall-clock speed-ups are measured by the `mega_fabric`
/// bench; these counters are what CI asserts on).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArbiterStats {
    /// Sampling intervals processed.
    pub ticks: u64,
    /// Apps enqueued on the dirty queue (each at most once per tick).
    pub dirty_enqueued: u64,
    /// Pod-arbiter solves (a full re-score solves `pods × ticks`).
    pub pods_solved: u64,
    /// Ticks on which the global coordinator ran.
    pub coordinator_runs: u64,
    /// Candidate score evaluations across pod arbiters and coordinator.
    pub candidates_scored: u64,
}

/// One per-device candidate in a pod arbiter's priority heap, ordered
/// exactly like the flat controller's global candidate sort: score
/// descending, then app index, hop distance and device index ascending.
#[derive(Debug)]
struct Cand {
    score: f64,
    app: usize,
    dist: u32,
    dev: DeviceId,
}

impl PartialEq for Cand {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Cand {}
impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Cand {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // A max-heap pops the highest score first; lower app/dist/device
        // indices win ties, so those comparisons are reversed.
        self.score
            .total_cmp(&other.score)
            .then(other.app.cmp(&self.app))
            .then(other.dist.cmp(&self.dist))
            .then(other.dev.cmp(&self.dev))
    }
}

/// The incremental, hierarchical fleet scheduler (see the module docs
/// for the pipeline). Shares [`FleetApp`], [`FleetSample`],
/// [`FleetShift`] and the pricing semantics with [`FleetController`].
///
/// [`FleetController`]: crate::fleet::FleetController
#[derive(Clone, Debug)]
pub struct HierarchicalController {
    config: ArbiterConfig,
    fabric: DeviceFabric,
    apps: Vec<FleetApp>,
    /// Home pod of each app (cached partition key).
    home_pod: Vec<u16>,
    /// Apps homed in each pod, ascending — the pod arbiter's work list.
    apps_by_pod: Vec<Vec<usize>>,
    pods: usize,
    placements: Vec<Placement>,
    up_streaks: Vec<u32>,
    down_streaks: Vec<u32>,
    starved_streaks: Vec<u32>,
    queued_intervals: Vec<u64>,
    fair_hold: Vec<bool>,
    rejected: Vec<bool>,
    shifts: Vec<FleetShift>,
    /// Held scoring rate per app; NaN until the first sample arrives.
    held_rates: Vec<f64>,
    /// The §8 raw benefit at the held rate, priced by the configured
    /// [`Objective`](crate::fleet::Objective) (plain watts under
    /// `Joules`), cached so a clean tick never re-runs the energy model
    /// (it only changes when the held rate does).
    held_raw_w: Vec<f64>,
    /// Per-app online tenure estimators (consulted only under
    /// [`TenurePolicy::Learned`]); observe the same shift stream as the
    /// flat controller's, so the two stay bit-equivalent.
    tenures: Vec<TenureEstimator>,
    /// Per-app starvation threshold (a pure function of config and the
    /// app's weight, so computed once).
    thresholds: Vec<u32>,
    /// Apps flagged for re-scoring next tick by end-of-tick events
    /// (placement changes, queue membership changes, claims coming due).
    pending_dirty: Vec<bool>,
    /// Devices whose occupancy changed last tick (or were marked via
    /// [`HierarchicalController::mark_device_dirty`]).
    pending_device_dirty: Vec<bool>,
    /// This tick's dirty marks (rebuilt each tick; kept for dedup).
    dirty: Vec<bool>,
    /// The dirty queue drained by the last tick, sorted by app index
    /// (test/analysis introspection).
    last_dirty: Vec<usize>,
    stats: ArbiterStats,
}

impl HierarchicalController {
    /// Creates a scheduler with every app starting in software placement.
    ///
    /// # Panics
    ///
    /// Panics under the same admission preconditions as
    /// [`FleetController::new`](crate::fleet::FleetController::new), or
    /// if `rate_deadband` is negative or not finite.
    pub fn new(config: ArbiterConfig, fabric: DeviceFabric, apps: Vec<FleetApp>) -> Self {
        for app in &apps {
            assert!(
                app.home.index() < fabric.device_count(),
                "app {:?} is homed at {} but the fabric has {} devices",
                app.name,
                app.home,
                fabric.device_count()
            );
            assert!(
                app.weight.is_finite() && app.weight > 0.0,
                "app {:?} has a non-positive weight {}",
                app.name,
                app.weight
            );
        }
        config.fleet.validate();
        assert!(
            config.rate_deadband.is_finite() && config.rate_deadband >= 0.0,
            "rate_deadband {} must be finite and non-negative",
            config.rate_deadband
        );
        let rejected: Vec<bool> = apps
            .iter()
            .map(|app| {
                fabric
                    .device_ids()
                    .all(|d| fabric.device(d).budget().admit(&app.demand).is_err())
            })
            .collect();
        let thresholds: Vec<u32> = apps
            .iter()
            .map(|a| pricing::starvation_threshold(&config.fleet, a.weight))
            .collect();
        let home_pod: Vec<u16> = apps.iter().map(|a| fabric.pod(a.home)).collect();
        let pods = fabric.pod_count();
        let mut apps_by_pod: Vec<Vec<usize>> = vec![Vec::new(); pods];
        for (i, &p) in home_pod.iter().enumerate() {
            apps_by_pod[p as usize].push(i);
        }
        let devices = fabric.device_count();
        let n = apps.len();
        HierarchicalController {
            config,
            fabric,
            apps,
            home_pod,
            apps_by_pod,
            pods,
            placements: vec![Placement::Software; n],
            up_streaks: vec![0; n],
            down_streaks: vec![0; n],
            starved_streaks: vec![0; n],
            queued_intervals: vec![0; n],
            fair_hold: vec![false; n],
            rejected,
            shifts: Vec::new(),
            held_rates: vec![f64::NAN; n],
            held_raw_w: vec![f64::NAN; n],
            tenures: vec![TenureEstimator::new(); n],
            thresholds,
            pending_dirty: vec![false; n],
            pending_device_dirty: vec![false; devices],
            dirty: vec![false; n],
            last_dirty: Vec::new(),
            stats: ArbiterStats::default(),
        }
    }

    /// Current per-app placements, indexed like the `apps` vector.
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// The scheduled applications.
    pub fn apps(&self) -> &[FleetApp] {
        &self.apps
    }

    /// The device fabric (its ledgers reflect the current placements).
    pub fn fabric(&self) -> &DeviceFabric {
        &self.fabric
    }

    /// The configuration.
    pub fn config(&self) -> &ArbiterConfig {
        &self.config
    }

    /// The decision log.
    pub fn shifts(&self) -> &[FleetShift] {
        &self.shifts
    }

    /// The pipeline's cumulative work counters.
    pub fn stats(&self) -> ArbiterStats {
        self.stats
    }

    /// The dirty queue drained by the most recent tick, sorted by app
    /// index. Each app appears at most once however many dirty events it
    /// raised that interval.
    pub fn last_dirty(&self) -> &[usize] {
        &self.last_dirty
    }

    /// The held scoring rate of `app` (NaN before its first sample).
    pub fn held_rate(&self, app: usize) -> f64 {
        self.held_rates[app]
    }

    /// The current admission verdict for `app` (same contract as
    /// [`FleetController::admission_decision`]).
    ///
    /// [`FleetController::admission_decision`]: crate::fleet::FleetController::admission_decision
    pub fn admission_decision(&self, app: usize) -> AdmissionDecision {
        if self.rejected[app] {
            AdmissionDecision::Reject
        } else if self.starved_streaks[app] > 0 {
            AdmissionDecision::Queue
        } else {
            AdmissionDecision::Admit
        }
    }

    /// Consecutive samples `app` has currently spent queued.
    pub fn starved_streak(&self, app: usize) -> u32 {
        self.starved_streaks[app]
    }

    /// Cumulative queued samples per app over the run.
    pub fn queued_intervals(&self) -> &[u64] {
        &self.queued_intervals
    }

    /// Flags a device whose capacity changed outside the scheduler's own
    /// decisions (an operator resizing a budget, a device draining for
    /// maintenance): next tick, every resident of that device's pod and
    /// every queued candidate homed there is re-scored.
    pub fn mark_device_dirty(&mut self, device: DeviceId) {
        self.pending_device_dirty[device.index()] = true;
    }

    /// Marks a fabric device alive or dead (the chaos suite's
    /// device-kill / ToR-partition lever). Tenants of a dead device are
    /// force-evicted to software on the next
    /// [`HierarchicalController::sample`] as [`ShiftReason::DeviceLoss`]
    /// shifts; the death raises a capacity event, so the device's pod
    /// re-arbitrates the same tick, and the device is skipped as a
    /// candidate until revived (which raises another capacity event).
    pub fn set_device_online(&mut self, id: DeviceId, online: bool) {
        self.fabric.set_online(id, online);
        self.pending_device_dirty[id.index()] = true;
    }

    /// Re-targets the offload floor
    /// ([`FleetControllerConfig::min_benefit_w`]) mid-run — the
    /// power-budget knob the chaos suite flaps. Every app is marked
    /// dirty: the floor gates every score, so incremental mode must
    /// re-arbitrate the whole fleet against the new budget.
    ///
    /// # Panics
    ///
    /// Panics if `floor_w` is not finite and non-negative.
    ///
    /// [`FleetControllerConfig::min_benefit_w`]: crate::fleet::FleetControllerConfig::min_benefit_w
    pub fn set_min_benefit_w(&mut self, floor_w: f64) {
        assert!(
            floor_w.is_finite() && floor_w >= 0.0,
            "offload floor must be finite and non-negative"
        );
        self.config.fleet.min_benefit_w = floor_w;
        for p in self.pending_dirty.iter_mut() {
            *p = true;
        }
    }

    /// Expected placement tenure of `app` in scheduler intervals (the
    /// learned estimate under [`TenurePolicy::Learned`], the config
    /// constant otherwise) — same contract as
    /// [`FleetController::expected_tenure_samples`](crate::fleet::FleetController::expected_tenure_samples).
    pub fn expected_tenure_samples(&self, app: usize) -> f64 {
        match self.config.fleet.tenure {
            TenurePolicy::Fixed => f64::from(self.config.fleet.expected_tenure_samples.max(1)),
            TenurePolicy::Learned { .. } => {
                self.tenures[app].expected_samples(self.config.fleet.expected_tenure_samples)
            }
        }
    }

    /// The online tenure estimator of `app` (its EWMA state advances on
    /// every recorded shift whatever the [`TenurePolicy`]).
    pub fn tenure_estimator(&self, app: usize) -> &TenureEstimator {
        &self.tenures[app]
    }

    /// The objective-priced migration debit charged against a move of
    /// `app` — mirrors `FleetController::migration_value` exactly, so
    /// flat and hierarchical runs price moves identically.
    fn migration_value(&self, app: usize) -> f64 {
        let config = &self.config.fleet;
        let watts = match config.tenure {
            TenurePolicy::Fixed => pricing::migration_w(config),
            TenurePolicy::Learned { .. } => pricing::migration_w_for(
                config,
                self.tenures[app].expected_samples(config.expected_tenure_samples),
            ),
        };
        config.objective.value_of_w(watts)
    }

    fn sticky_score(&self, app: usize, device: DeviceId) -> f64 {
        let eff = pricing::effective_benefit_w(
            &self.config.fleet,
            &self.fabric,
            &self.apps[app],
            device,
            self.held_rates[app],
        );
        pricing::per_capacity(&self.fabric, &self.apps[app], device, eff)
            * self.config.fleet.stickiness
    }

    /// Marks `i` dirty, deduplicating: at most one enqueue per interval.
    fn mark(dirty: &mut [bool], queue: &mut Vec<usize>, stats: &mut ArbiterStats, i: usize) {
        if !dirty[i] {
            dirty[i] = true;
            queue.push(i);
            stats.dirty_enqueued += 1;
        }
    }

    /// Feeds one sample per app; returns the placement changes to
    /// execute (empty most intervals — and, in incremental mode, most
    /// intervals do almost no work deciding that).
    ///
    /// # Panics
    ///
    /// Panics if `samples.len()` differs from the number of apps.
    pub fn sample(&mut self, now: Nanos, samples: &[FleetSample]) -> Vec<(usize, Placement)> {
        assert_eq!(samples.len(), self.apps.len(), "one sample per app");
        let n = self.apps.len();
        let sustain = self.config.fleet.sustain_samples;
        let floor = pricing::floor_value(&self.config.fleet);
        self.stats.ticks += 1;

        // Failure response precedes everything else (mirroring the flat
        // controller): tenants of an offline device are force-evicted
        // to software with their streaks reset, and the death feeds the
        // dirty-app queue — the evictee is marked dirty and the dead
        // device raises a capacity event, so its whole pod re-arbitrates
        // this very tick. The shift is recorded at the rate measured on
        // the (dead) device, priced as the raw software value — exactly
        // the flat controller's eviction record.
        let mut evicted: Vec<(usize, Placement)> = Vec::new();
        for (i, sample) in samples.iter().enumerate().take(n) {
            if let Placement::Device(d) = self.placements[i] {
                if !self.fabric.is_online(d) {
                    let measured = sample.host.hw_app_rate;
                    self.fabric.release(i as u64);
                    self.placements[i] = Placement::Software;
                    self.up_streaks[i] = 0;
                    self.down_streaks[i] = 0;
                    self.starved_streaks[i] = 0;
                    self.fair_hold[i] = false;
                    self.pending_dirty[i] = true;
                    self.pending_device_dirty[d.index()] = true;
                    self.tenures[i].observe_shift(
                        now,
                        self.config.fleet.interval,
                        self.config.fleet.tenure.ewma_alpha(),
                    );
                    self.shifts.push(FleetShift {
                        at: now,
                        app: i,
                        to: Placement::Software,
                        rate_pps: measured,
                        benefit_w: pricing::raw_value(&self.config.fleet, &self.apps[i], measured),
                        reason: ShiftReason::DeviceLoss,
                    });
                    evicted.push((i, Placement::Software));
                }
            }
        }

        // --- Phase 0+1: measure, hold, account streaks, build the dirty
        // queue. Every gate consulted by the solve is derived from held
        // rates, so any input change to a pod's sub-problem raises a
        // dirty event here (or was flagged at the end of last tick).
        // `last_dirty` is exactly the set of flags raised last tick, so
        // clearing is O(dirty), not O(n).
        let mut dirty = std::mem::take(&mut self.dirty);
        for &i in &self.last_dirty {
            dirty[i] = false;
        }
        let mut queue: Vec<usize> = Vec::new();

        // (a) Capacity events: a changed device dirties its whole pod —
        // every resident on the pod's devices plus every queued candidate
        // homed there (their admission odds just changed).
        let mut cap_pods = vec![false; self.pods];
        let mut any_cap = false;
        for d in 0..self.pending_device_dirty.len() {
            if self.pending_device_dirty[d] {
                self.pending_device_dirty[d] = false;
                cap_pods[self.fabric.pod(DeviceId(d as u16)) as usize] = true;
                any_cap = true;
            }
        }
        // (b) One pass per app: events carried over from the previous tick
        // (placement changes, queue membership changes, claims coming
        // due), capacity fallout, then the rate dead band and hysteresis
        // gates. `mark` deduplicates and the queue is sorted afterwards,
        // so folding the sources into one loop changes no outcome.
        let deadband = self.config.rate_deadband;
        let evict_w = floor * self.config.fleet.evict_fraction;
        for i in 0..n {
            if self.pending_dirty[i] {
                self.pending_dirty[i] = false;
                Self::mark(&mut dirty, &mut queue, &mut self.stats, i);
            }
            if any_cap {
                let touched = match self.placements[i] {
                    Placement::Device(d) => cap_pods[self.fabric.pod(d) as usize],
                    Placement::Software => {
                        self.starved_streaks[i] > 0 && cap_pods[self.home_pod[i] as usize]
                    }
                };
                if touched {
                    Self::mark(&mut dirty, &mut queue, &mut self.stats, i);
                }
            }
            let measured = match self.placements[i] {
                Placement::Device(_) => samples[i].host.hw_app_rate,
                Placement::Software => samples[i].offered_pps,
            };
            let held = self.held_rates[i];
            // A NaN `held` (first sample) fails the in-band comparison,
            // so initialisation and a genuine crossing share one branch —
            // the negated `<=` is load-bearing, not a misspelt `>`.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !((measured - held).abs() <= deadband * held.abs().max(1.0)) {
                self.held_rates[i] = measured;
                self.held_raw_w[i] =
                    pricing::raw_value(&self.config.fleet, &self.apps[i], measured);
                Self::mark(&mut dirty, &mut queue, &mut self.stats, i);
            }
            // The cached raw value makes a clean tick free of energy-
            // model evaluations; `delivered` applies the same haircut
            // arithmetic as `pricing::effective_benefit_w`.
            let raw = self.held_raw_w[i];
            // Cold software tenants (no benefit, no streaks) are the bulk
            // of a fleet; their gates provably cannot move, so skip the
            // streak accounting entirely.
            if raw < floor
                && self.up_streaks[i] == 0
                && matches!(self.placements[i], Placement::Software)
            {
                continue;
            }
            let rate = self.held_rates[i];
            let up_was = self.up_streaks[i] >= sustain;
            self.up_streaks[i] = if raw >= floor {
                self.up_streaks[i].saturating_add(1)
            } else {
                0
            };
            if up_was != (self.up_streaks[i] >= sustain) {
                Self::mark(&mut dirty, &mut queue, &mut self.stats, i);
            }
            let down_was = self.down_streaks[i] >= sustain;
            match self.placements[i] {
                Placement::Software => self.down_streaks[i] = 0,
                Placement::Device(d) => {
                    let delivered = pricing::effective_value_of(
                        &self.config.fleet,
                        &self.fabric,
                        self.apps[i].home,
                        d,
                        raw,
                        rate,
                    );
                    if delivered < evict_w {
                        self.down_streaks[i] = self.down_streaks[i].saturating_add(1);
                    } else {
                        self.down_streaks[i] = 0;
                    }
                }
            }
            if down_was != (self.down_streaks[i] >= sustain) {
                Self::mark(&mut dirty, &mut queue, &mut self.stats, i);
            }
        }

        // Dirty apps dirty their home pod and (if different) the pod
        // where they are resident; capacity events dirty their pod
        // outright.
        let mut pods_dirty = vec![false; self.pods];
        for &i in &queue {
            pods_dirty[self.home_pod[i] as usize] = true;
            if let Placement::Device(d) = self.placements[i] {
                pods_dirty[self.fabric.pod(d) as usize] = true;
            }
        }
        for (p, &c) in cap_pods.iter().enumerate() {
            pods_dirty[p] |= c;
        }
        if self.config.mode == ArbitrationMode::FullRescore {
            pods_dirty.iter_mut().for_each(|p| *p = true);
        }
        queue.sort_unstable();
        self.last_dirty = queue;
        self.dirty = dirty;

        let decisions = if pods_dirty.iter().any(|&p| p) {
            self.solve(now, &pods_dirty)
        } else {
            Vec::new()
        };

        // --- Queue accounting (post-decision), identical to the flat
        // controller — plus the dirty events the transitions imply:
        // entering or leaving the queue changes DRF contention, and
        // crossing the starvation threshold arms a claim.
        for i in 0..n {
            let queued = !self.rejected[i]
                && self.placements[i] == Placement::Software
                && self.up_streaks[i] >= sustain;
            if queued {
                let was = self.starved_streaks[i];
                self.starved_streaks[i] = was.saturating_add(1);
                self.queued_intervals[i] += 1;
                let threshold = self.thresholds[i];
                if was == 0 || (was < threshold && self.starved_streaks[i] >= threshold) {
                    self.pending_dirty[i] = true;
                }
            } else if self.starved_streaks[i] > 0 {
                self.starved_streaks[i] = 0;
                self.pending_dirty[i] = true;
            }
        }
        if evicted.is_empty() {
            decisions
        } else {
            evicted.extend(decisions);
            evicted
        }
    }

    /// Re-solves the dirty pods and runs the global coordinator, then
    /// executes the diff against the current placements.
    fn solve(&mut self, now: Nanos, pods_dirty: &[bool]) -> Vec<(usize, Placement)> {
        let n = self.apps.len();
        let sustain = self.config.fleet.sustain_samples;

        // Seats kept ahead of any score: fairness tenure, cross-pod
        // spills (coordinator-owned; a host pod's locals cannot preempt
        // them), and every incumbent of a *clean* pod (whose sub-problem
        // is unchanged — the incremental reuse). Everyone else is up for
        // re-decision, so their seats are released and the fabric is
        // rebuilt *in place* — every score is allocation-independent
        // (benefit is topology-priced, capacity cost is a budget
        // fraction), so mutating mid-solve cannot skew a later score, and
        // releasing only the contested seats is what keeps a solve's cost
        // proportional to the dirty pods rather than to the fleet.
        let mut selected: Vec<Option<DeviceId>> = vec![None; n];
        for (i, seat) in selected.iter_mut().enumerate() {
            if let Placement::Device(d) = self.placements[i] {
                let host_pod = self.fabric.pod(d) as usize;
                let cross_pod = self.fabric.pod(d) != self.home_pod[i];
                let keep = self.down_streaks[i] < sustain
                    && (self.fair_hold[i] || cross_pod || !pods_dirty[host_pod]);
                if keep {
                    *seat = Some(d);
                } else {
                    // Eviction due, or an incumbent of a dirty pod that
                    // must re-compete on equal footing.
                    self.fabric.release(i as u64);
                }
            }
        }

        for (p, &is_dirty) in pods_dirty.iter().enumerate() {
            if is_dirty {
                self.stats.pods_solved += 1;
                self.solve_pod(p as u16, &mut selected);
            }
        }
        self.stats.coordinator_runs += 1;
        let (fair_placed, fair_clipped) = self.coordinate(&mut selected);

        // --- Execute the diff (flat-controller reason tagging).
        let rates = &self.held_rates;
        let mut decisions = Vec::new();
        let want_of = |s: Option<DeviceId>| match s {
            Some(d) => Placement::Device(d),
            None => Placement::Software,
        };
        let changed = (0..n).any(|i| want_of(selected[i]) != self.placements[i]);
        let prev_placements = if changed {
            self.placements.clone()
        } else {
            Vec::new()
        };
        let prev_down = if changed {
            self.down_streaks.clone()
        } else {
            Vec::new()
        };
        for i in 0..n {
            let want = want_of(selected[i]);
            if want != self.placements[i] {
                let reason = if fair_placed[i] || fair_clipped[i] {
                    ShiftReason::FairShare
                } else if let (Placement::Device(d), true) = (want, self.starved_streaks[i] > 0) {
                    let preempted = (0..n).any(|j| {
                        j != i
                            && prev_placements[j] == Placement::Device(d)
                            && selected[j] != Some(d)
                            && prev_down[j] < sustain
                    });
                    if preempted {
                        ShiftReason::Benefit
                    } else {
                        ShiftReason::Admission
                    }
                } else {
                    ShiftReason::Benefit
                };
                // Occupancy changed on both ends of the move: their pods
                // re-arbitrate next tick, and so does the moved app.
                if let Placement::Device(d) = self.placements[i] {
                    self.pending_device_dirty[d.index()] = true;
                }
                if let Placement::Device(d) = want {
                    self.pending_device_dirty[d.index()] = true;
                }
                self.pending_dirty[i] = true;
                self.placements[i] = want;
                self.up_streaks[i] = 0;
                self.down_streaks[i] = 0;
                self.starved_streaks[i] = 0;
                self.fair_hold[i] = fair_placed[i];
                self.tenures[i].observe_shift(
                    now,
                    self.config.fleet.interval,
                    self.config.fleet.tenure.ewma_alpha(),
                );
                let benefit_w = match want {
                    Placement::Device(d) => pricing::effective_benefit_w(
                        &self.config.fleet,
                        &self.fabric,
                        &self.apps[i],
                        d,
                        rates[i],
                    ),
                    Placement::Software => {
                        pricing::raw_value(&self.config.fleet, &self.apps[i], rates[i])
                    }
                };
                self.shifts.push(FleetShift {
                    at: now,
                    app: i,
                    to: want,
                    rate_pps: rates[i],
                    benefit_w,
                    reason,
                });
                decisions.push((i, want));
            }
        }
        decisions
    }

    /// The pod arbiter: re-solves the greedy knapsack for apps homed in
    /// `pod` over the pod's own devices, merging one priority heap per
    /// device in exactly the flat controller's candidate order.
    fn solve_pod(&mut self, pod: u16, selected: &mut [Option<DeviceId>]) {
        let sustain = self.config.fleet.sustain_samples;
        let floor = pricing::floor_value(&self.config.fleet);
        let devices: Vec<DeviceId> = self
            .fabric
            .pod_devices(pod)
            .filter(|&d| self.fabric.is_online(d))
            .collect();
        let mut heaps: Vec<BinaryHeap<Cand>> = devices.iter().map(|_| BinaryHeap::new()).collect();
        let push = |heaps: &mut Vec<BinaryHeap<Cand>>, k: usize, score: f64, app: usize| {
            let dev = devices[k];
            let dist = self.fabric.distance(self.apps[app].home, dev);
            heaps[k].push(Cand {
                score,
                app,
                dist,
                dev,
            });
        };
        for &i in &self.apps_by_pod[pod as usize] {
            if self.rejected[i] || selected[i].is_some() {
                continue;
            }
            let rate = self.held_rates[i];
            match self.placements[i] {
                Placement::Device(cur) if self.fabric.pod(cur) == pod => {
                    if self.down_streaks[i] >= sustain {
                        continue;
                    }
                    for (k, &d) in devices.iter().enumerate() {
                        if d == cur {
                            self.stats.candidates_scored += 1;
                            let eff = pricing::effective_benefit_w(
                                &self.config.fleet,
                                &self.fabric,
                                &self.apps[i],
                                d,
                                rate,
                            );
                            let score = pricing::per_capacity(&self.fabric, &self.apps[i], d, eff)
                                * self.config.fleet.stickiness;
                            push(&mut heaps, k, score, i);
                        } else if self.up_streaks[i] >= sustain {
                            self.stats.candidates_scored += 1;
                            let mb = pricing::effective_benefit_w(
                                &self.config.fleet,
                                &self.fabric,
                                &self.apps[i],
                                d,
                                rate,
                            ) - self.migration_value(i);
                            if mb >= floor {
                                let score =
                                    pricing::per_capacity(&self.fabric, &self.apps[i], d, mb);
                                push(&mut heaps, k, score, i);
                            }
                        }
                    }
                }
                // Cross-pod residents are coordinator-owned (their seat
                // was pre-kept or their eviction is due).
                Placement::Device(_) => {}
                Placement::Software => {
                    if self.up_streaks[i] >= sustain {
                        for (k, &d) in devices.iter().enumerate() {
                            self.stats.candidates_scored += 1;
                            let eff = pricing::effective_benefit_w(
                                &self.config.fleet,
                                &self.fabric,
                                &self.apps[i],
                                d,
                                rate,
                            );
                            if eff >= floor {
                                let score =
                                    pricing::per_capacity(&self.fabric, &self.apps[i], d, eff);
                                push(&mut heaps, k, score, i);
                            }
                        }
                    }
                }
            }
        }
        // Merge the per-device heaps: repeatedly admit the globally best
        // candidate (identical total order to the flat controller's
        // sorted scan restricted to this pod).
        loop {
            let mut best: Option<usize> = None;
            for (k, heap) in heaps.iter().enumerate() {
                if let Some(top) = heap.peek() {
                    let better = match best {
                        None => true,
                        Some(b) => top > heaps[b].peek().expect("best heap is non-empty"),
                    };
                    if better {
                        best = Some(k);
                    }
                }
            }
            let Some(k) = best else { break };
            let cand = heaps[k].pop().expect("peeked heap pops");
            if selected[cand.app].is_some() {
                continue; // already seated by a better candidate
            }
            if self
                .fabric
                .admit(cand.dev, cand.app as u64, self.apps[cand.app].demand)
                .is_ok()
            {
                selected[cand.app] = Some(cand.dev);
            }
        }
    }

    /// The global coordinator: cross-pod spills and moves, then the
    /// weighted-DRF fairness pass over the whole fabric. Returns the
    /// (fair_placed, fair_clipped) marks for reason tagging.
    fn coordinate(&mut self, selected: &mut [Option<DeviceId>]) -> (Vec<bool>, Vec<bool>) {
        let n = self.apps.len();
        let sustain = self.config.fleet.sustain_samples;
        let floor = pricing::floor_value(&self.config.fleet);

        // (a) Cross-pod candidates: spills for apps their home pod could
        // not place, and moves (including repatriation) for cross-pod
        // residents — gated by the same sustain/floor rules as the flat
        // controller's move candidates, and a mover must beat its own
        // sticky score where it sits.
        let mut cands: Vec<(f64, usize, DeviceId)> = Vec::new();
        for (i, &seat) in selected.iter().enumerate() {
            if self.rejected[i] {
                continue;
            }
            let rate = self.held_rates[i];
            match self.placements[i] {
                Placement::Device(cur) => {
                    if self.down_streaks[i] >= sustain || self.up_streaks[i] < sustain {
                        continue;
                    }
                    let cross = self.fabric.pod(cur) != self.home_pod[i];
                    let migration = self.migration_value(i);
                    if cross && seat == Some(cur) {
                        let sticky = self.sticky_score(i, cur);
                        for d in self.fabric.device_ids() {
                            if d == cur || !self.fabric.is_online(d) {
                                continue;
                            }
                            self.stats.candidates_scored += 1;
                            let mb = pricing::effective_benefit_w(
                                &self.config.fleet,
                                &self.fabric,
                                &self.apps[i],
                                d,
                                rate,
                            ) - migration;
                            if mb >= floor {
                                let sc = pricing::per_capacity(&self.fabric, &self.apps[i], d, mb);
                                if sc > sticky {
                                    cands.push((sc, i, d));
                                }
                            }
                        }
                    } else if !cross && seat.is_none() {
                        // Preempted at home: spill out of the pod.
                        for d in self.fabric.device_ids() {
                            if self.fabric.pod(d) == self.home_pod[i] || !self.fabric.is_online(d) {
                                continue;
                            }
                            self.stats.candidates_scored += 1;
                            let mb = pricing::effective_benefit_w(
                                &self.config.fleet,
                                &self.fabric,
                                &self.apps[i],
                                d,
                                rate,
                            ) - migration;
                            if mb >= floor {
                                cands.push((
                                    pricing::per_capacity(&self.fabric, &self.apps[i], d, mb),
                                    i,
                                    d,
                                ));
                            }
                        }
                    }
                }
                Placement::Software => {
                    if seat.is_none() && self.up_streaks[i] >= sustain {
                        for d in self.fabric.device_ids() {
                            if self.fabric.pod(d) == self.home_pod[i] || !self.fabric.is_online(d) {
                                continue;
                            }
                            self.stats.candidates_scored += 1;
                            let eff = pricing::effective_benefit_w(
                                &self.config.fleet,
                                &self.fabric,
                                &self.apps[i],
                                d,
                                rate,
                            );
                            if eff >= floor {
                                cands.push((
                                    pricing::per_capacity(&self.fabric, &self.apps[i], d, eff),
                                    i,
                                    d,
                                ));
                            }
                        }
                    }
                }
            }
        }
        cands.sort_by(|a, b| {
            b.0.total_cmp(&a.0)
                .then(a.1.cmp(&b.1))
                .then_with(|| {
                    let da = self.fabric.distance(self.apps[a.1].home, a.2);
                    let db = self.fabric.distance(self.apps[b.1].home, b.2);
                    da.cmp(&db)
                })
                .then(a.2.cmp(&b.2))
        });
        let mut moved = vec![false; n];
        for &(_, i, d) in &cands {
            if moved[i] {
                continue;
            }
            match selected[i] {
                Some(cur) if cur == d => {}
                // A cross-pod resident moving: `admit` releases the old
                // seat atomically (a program moves, it is not copied).
                Some(_) | None => {
                    if self.fabric.admit(d, i as u64, self.apps[i].demand).is_ok() {
                        selected[i] = Some(d);
                        moved[i] = true;
                    }
                }
            }
        }

        // (b) Fairness pass: identical to the flat controller's, planned
        // over the whole fabric.
        let mut fair_placed = vec![false; n];
        let mut fair_clipped = vec![false; n];
        let mut claimants: Vec<usize> = (0..n)
            .filter(|&i| {
                !self.rejected[i]
                    && selected[i].is_none()
                    && self.starved_streaks[i] >= self.thresholds[i]
            })
            .collect();
        if !claimants.is_empty() {
            claimants.sort_by(|&a, &b| {
                let da = self.starved_streaks[a] as f64 * self.apps[a].weight;
                let db = self.starved_streaks[b] as f64 * self.apps[b].weight;
                db.total_cmp(&da).then(a.cmp(&b))
            });
            for &i in &claimants {
                if selected[i].is_some() {
                    continue;
                }
                let mut plans = pricing::plan_handovers(
                    &self.config.fleet,
                    &self.apps,
                    &self.starved_streaks,
                    &self.fabric,
                    |j| selected[j],
                    |j| fair_placed[j],
                    |j| self.migration_value(j),
                    i,
                    &self.held_rates,
                );
                self.stats.candidates_scored += plans.len() as u64;
                pricing::order_plans(&mut plans, self.config.fleet.claim_policy);
                if let Some(plan) = plans.first() {
                    for &e in &plan.clips {
                        self.fabric.release(e as u64);
                        selected[e] = None;
                        fair_clipped[e] = true;
                    }
                    self.fabric
                        .admit(plan.device, i as u64, self.apps[i].demand)
                        .expect("a planned hand-over fits by construction");
                    selected[i] = Some(plan.device);
                    fair_placed[i] = true;
                }
            }
        }
        (fair_placed, fair_clipped)
    }
}

impl FleetScheduler for HierarchicalController {
    fn interval(&self) -> Nanos {
        self.config().fleet.interval
    }
    fn app_count(&self) -> usize {
        self.apps().len()
    }
    fn placements(&self) -> &[Placement] {
        HierarchicalController::placements(self)
    }
    fn sample(&mut self, now: Nanos, samples: &[FleetSample]) -> Vec<(usize, Placement)> {
        HierarchicalController::sample(self, now, samples)
    }
    fn admission_decision(&self, app: usize) -> AdmissionDecision {
        HierarchicalController::admission_decision(self, app)
    }
    fn queued_intervals(&self) -> &[u64] {
        HierarchicalController::queued_intervals(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetController;
    use crate::host::HostSample;
    use crate::PlacementAnalysis;
    use inc_hw::{PipelineBudget, ProgramResources, TierCost, Topology};
    use inc_power::EnergyParams;

    fn analysis(slope_w_per_kpps: f64, unpark_w: f64) -> PlacementAnalysis {
        PlacementAnalysis {
            software: EnergyParams {
                idle_w: 50.0,
                sleep_w: 0.0,
                active_w: 50.0 + slope_w_per_kpps * 1_000.0,
                peak_rate_pps: 1_000_000.0,
            },
            network: EnergyParams {
                idle_w: 50.0 + unpark_w,
                sleep_w: 0.0,
                active_w: 50.0 + unpark_w + 0.1,
                peak_rate_pps: 10_000_000.0,
            },
        }
    }

    fn app_homed(name: &str, stages: u32, slope: f64, unpark: f64, home: DeviceId) -> FleetApp {
        FleetApp {
            name: name.into(),
            demand: ProgramResources {
                stages,
                sram_bytes: 1 << 20,
                parse_depth_bytes: 64,
            },
            analysis: analysis(slope, unpark),
            home,
            weight: 1.0,
        }
    }

    fn app(name: &str, stages: u32, slope: f64, unpark: f64) -> FleetApp {
        app_homed(name, stages, slope, unpark, DeviceId::LOCAL)
    }

    fn sample(offered: f64, hw_rate: f64) -> FleetSample {
        FleetSample {
            host: HostSample {
                rapl_w: 50.0,
                app_cpu_util: 0.5,
                hw_app_rate: hw_rate,
            },
            offered_pps: offered,
        }
    }

    fn t(s: u64) -> Nanos {
        Nanos::from_secs(s)
    }

    fn cfg() -> FleetControllerConfig {
        FleetControllerConfig::standard(Nanos::from_secs(1))
    }

    /// Two 12-stage ToRs per pod, two pods: the smallest fabric where
    /// the coordinator has real cross-pod work.
    fn two_pods() -> DeviceFabric {
        DeviceFabric::homogeneous(
            4,
            PipelineBudget::tofino_like(),
            Topology::rack_pairs(
                2,
                TierCost::standard_intra_pod(),
                TierCost::standard_inter_pod(),
            ),
        )
    }

    fn shift_key(s: &FleetShift) -> (Nanos, usize, Placement, ShiftReason, u64, u64) {
        (
            s.at,
            s.app,
            s.to,
            s.reason,
            s.rate_pps.to_bits(),
            s.benefit_w.to_bits(),
        )
    }

    /// With one pod and a zero dead band the hierarchical pipeline must
    /// reproduce the flat controller exactly: same decisions, same shift
    /// log (bit-identical rates and benefits), same admission verdicts.
    #[test]
    fn single_pod_zero_deadband_matches_flat_controller() {
        let apps = || {
            vec![
                app("a", 7, 0.08, 2.0),
                app("b", 6, 0.14, 2.0),
                app("c", 4, 0.10, 2.0),
            ]
        };
        let fabric = || DeviceFabric::single(PipelineBudget::tofino_like());
        let mut flat = FleetController::new(cfg(), fabric(), apps());
        let mut hier = HierarchicalController::new(
            ArbiterConfig {
                fleet: cfg(),
                mode: ArbitrationMode::Incremental,
                rate_deadband: 0.0,
            },
            fabric(),
            apps(),
        );
        // A trace with offloads, an eviction, contention and recovery.
        let rate_of = |step: u64, i: usize| -> f64 {
            match (i, step) {
                (1, 0..=8) => 100_000.0,
                (1, _) => 1_000.0, // b collapses -> eviction
                (0, _) => 100_000.0,
                (2, 0..=4) => 500.0,
                (2, _) => 90_000.0, // c heats up mid-run
                _ => unreachable!(),
            }
        };
        for step in 1..=24 {
            let s: Vec<FleetSample> = (0..3)
                .map(|i| {
                    let r = rate_of(step, i);
                    sample(r, r)
                })
                .collect();
            let df = flat.sample(t(step), &s);
            let dh = hier.sample(t(step), &s);
            assert_eq!(df, dh, "decisions diverged at step {step}");
            assert_eq!(flat.placements(), hier.placements(), "step {step}");
            for i in 0..3 {
                assert_eq!(
                    flat.admission_decision(i),
                    hier.admission_decision(i),
                    "app {i} verdict at step {step}"
                );
            }
        }
        assert_eq!(flat.shifts().len(), hier.shifts().len());
        for (f, h) in flat.shifts().iter().zip(hier.shifts()) {
            assert_eq!(shift_key(f), shift_key(h));
        }
        assert!(!flat.shifts().is_empty(), "the trace must exercise shifts");
    }

    /// Incremental scheduling and a full re-score make the same decisions
    /// on a multi-pod trace — while solving far fewer pod problems.
    #[test]
    fn incremental_matches_full_rescore_across_pods() {
        let apps = || {
            vec![
                app_homed("a", 7, 0.08, 2.0, DeviceId(0)),
                app_homed("b", 6, 0.14, 2.0, DeviceId(0)),
                app_homed("c", 7, 0.10, 2.0, DeviceId(2)),
                app_homed("d", 5, 0.09, 2.0, DeviceId(3)),
            ]
        };
        let build = |mode| {
            HierarchicalController::new(
                ArbiterConfig {
                    fleet: cfg(),
                    mode,
                    rate_deadband: 0.05,
                },
                two_pods(),
                apps(),
            )
        };
        let mut full = build(ArbitrationMode::FullRescore);
        let mut inc = build(ArbitrationMode::Incremental);
        let rate_of = |step: u64, i: usize| -> f64 {
            match (i, step) {
                (0, _) => 100_000.0 + (step % 3) as f64, // wobbles inside the band
                (1, 0..=10) => 120_000.0,
                (1, _) => 800.0, // collapses
                (2, _) => 95_000.0,
                (3, 0..=6) => 400.0,
                (3, _) => 70_000.0, // heats up
                _ => unreachable!(),
            }
        };
        for step in 1..=30 {
            let s: Vec<FleetSample> = (0..4)
                .map(|i| {
                    let r = rate_of(step, i);
                    sample(r, r)
                })
                .collect();
            let df = full.sample(t(step), &s);
            let di = inc.sample(t(step), &s);
            assert_eq!(df, di, "decisions diverged at step {step}");
            assert_eq!(full.placements(), inc.placements(), "step {step}");
        }
        assert_eq!(full.shifts().len(), inc.shifts().len());
        for (f, i) in full.shifts().iter().zip(inc.shifts()) {
            assert_eq!(shift_key(f), shift_key(i));
        }
        assert!(!full.shifts().is_empty(), "the trace must exercise shifts");
        let (sf, si) = (full.stats(), inc.stats());
        assert_eq!(
            sf.pods_solved,
            2 * sf.ticks,
            "full re-score solves all pods"
        );
        assert!(
            si.pods_solved < sf.pods_solved / 2,
            "incremental solved {} of {} pod problems",
            si.pods_solved,
            sf.pods_solved
        );
        assert!(si.candidates_scored < sf.candidates_scored);
    }

    /// An app flapping *exactly* on the dead band never re-enters the
    /// dirty queue (the band is strict), and a genuine crossing enqueues
    /// it exactly once per interval however many events it raises.
    #[test]
    fn deadband_flap_enqueues_at_most_once_per_interval() {
        // 0.25 is exact in binary, so `deadband × held` is exactly
        // 25 000 pps and the band-edge equality below is not at the
        // mercy of rounding.
        let mut ctl = HierarchicalController::new(
            ArbiterConfig {
                fleet: cfg(),
                mode: ArbitrationMode::Incremental,
                rate_deadband: 0.25,
            },
            DeviceFabric::single(PipelineBudget::tofino_like()),
            // Unprofitable at every rate in the trace (raw benefit stays
            // under the 1 W floor), so the hysteresis gates never flip and
            // the only dirty events are rate-band crossings.
            vec![app("a", 7, 0.005, 2.0)],
        );
        // First sample seeds the held rate: one enqueue.
        let base = 100_000.0;
        ctl.sample(t(1), &[sample(base, base)]);
        assert_eq!(ctl.last_dirty(), &[0]);
        assert_eq!(ctl.held_rate(0), base);
        // Flap exactly on the band edge, alternating sides: |m - h| ==
        // deadband * h is NOT a crossing (strictly greater required).
        for step in 2..=7 {
            let m = if step % 2 == 0 {
                base * 1.25
            } else {
                base * 0.75
            };
            ctl.sample(t(step), &[sample(m, m)]);
            assert!(
                !ctl.last_dirty().contains(&0),
                "on-band flap re-scored at step {step}: {:?}",
                ctl.last_dirty()
            );
            assert_eq!(ctl.held_rate(0), base, "held rate moved at step {step}");
        }
        // A real crossing: held moves, the app is enqueued exactly once
        // even though the rate event and (possibly) gate events coincide.
        let burst = base * 2.0;
        ctl.sample(t(8), &[sample(burst, burst)]);
        assert_eq!(ctl.last_dirty(), &[0]);
        assert_eq!(ctl.held_rate(0), burst);
        let enqueued = ctl.stats().dirty_enqueued;
        assert_eq!(enqueued, 2, "the seed and the one genuine crossing");
        // Quiet tail: no further enqueues at all.
        for step in 9..=13 {
            ctl.sample(t(step), &[sample(burst, burst)]);
            assert!(ctl.last_dirty().is_empty(), "step {step}");
        }
        assert_eq!(ctl.stats().dirty_enqueued, enqueued);
    }

    /// A capacity event on one device re-scores every resident of that
    /// device's pod and every queued candidate homed there — and nobody
    /// in other pods.
    #[test]
    fn capacity_change_dirties_pod_residents_and_queued_candidates() {
        // Pod 0: a resident (a) and a starved candidate (b) that cannot
        // co-reside with it. Pod 1: a settled resident (c).
        let apps = vec![
            app_homed("a", 7, 0.14, 2.0, DeviceId(0)),
            app_homed("b", 6, 0.08, 2.0, DeviceId(0)),
            app_homed("c", 7, 0.10, 2.0, DeviceId(1)),
        ];
        // One 12-stage device per pod so pod 0 genuinely starves b, and
        // an inter-pod haircut harsh enough that b will not spill to pod
        // 1 (0.08 slope × 0.05 at 100 kpps is far under the 1 W floor).
        let fabric = DeviceFabric::homogeneous(
            2,
            PipelineBudget::tofino_like(),
            Topology::fat_tree(
                2,
                1,
                TierCost::standard_intra_pod(),
                TierCost {
                    extra_latency: Nanos::from_micros(6),
                    benefit_factor: 0.05,
                    link_energy_nj: 0.0,
                },
            ),
        );
        let mut ctl = HierarchicalController::new(
            ArbiterConfig {
                fleet: cfg(),
                mode: ArbitrationMode::Incremental,
                rate_deadband: 0.05,
            },
            fabric,
            apps,
        );
        let s = [
            sample(100_000.0, 100_000.0),
            sample(100_000.0, 100_000.0),
            sample(100_000.0, 100_000.0),
        ];
        for step in 1..=8 {
            ctl.sample(t(step), &s);
        }
        assert_eq!(ctl.placements()[0], Placement::Device(DeviceId(0)));
        assert_eq!(ctl.placements()[2], Placement::Device(DeviceId(1)));
        assert_eq!(ctl.placements()[1], Placement::Software);
        assert_eq!(ctl.admission_decision(1), AdmissionDecision::Queue);
        // Settle: a quiet tick with an empty dirty queue.
        ctl.sample(t(9), &s);
        assert_eq!(ctl.last_dirty(), &[] as &[usize]);
        // A capacity event on pod 0's device dirties its resident (a) and
        // the starved candidate homed there (b) — but not pod 1's c.
        ctl.mark_device_dirty(DeviceId(0));
        ctl.sample(t(10), &s);
        assert_eq!(ctl.last_dirty(), &[0, 1]);
        // And the event is consumed: the next tick is clean again.
        ctl.sample(t(11), &s);
        assert_eq!(ctl.last_dirty(), &[] as &[usize]);
    }

    /// Quiet ticks in incremental mode skip the solve entirely: no pod
    /// problems, no coordinator run, no candidate scoring.
    #[test]
    fn quiet_ticks_do_no_arbitration_work() {
        let mut ctl = HierarchicalController::new(
            ArbiterConfig::standard(Nanos::from_secs(1)),
            two_pods(),
            vec![
                app_homed("a", 7, 0.08, 2.0, DeviceId(0)),
                app_homed("c", 7, 0.10, 2.0, DeviceId(2)),
            ],
        );
        let s = [sample(100_000.0, 100_000.0), sample(95_000.0, 95_000.0)];
        for step in 1..=6 {
            ctl.sample(t(step), &s);
        }
        let settled = ctl.stats();
        for step in 7..=20 {
            ctl.sample(t(step), &s);
        }
        let after = ctl.stats();
        assert_eq!(after.pods_solved, settled.pods_solved);
        assert_eq!(after.coordinator_runs, settled.coordinator_runs);
        assert_eq!(after.candidates_scored, settled.candidates_scored);
        assert_eq!(after.dirty_enqueued, settled.dirty_enqueued);
        assert_eq!(after.ticks, 20);
    }
}
