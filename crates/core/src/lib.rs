//! **In-network computing on demand** — the paper's primary contribution
//! (§8–§9).
//!
//! Programmable network devices are treated like any other schedulable
//! compute resource: a service runs in host software at low load (where
//! software is more power-efficient) and shifts into the network device as
//! load grows (where hardware is both faster and cheaper per watt), then
//! shifts back as load recedes.
//!
//! This crate provides:
//!
//! * [`HostController`] — the host-controlled controller (§9.1): RAPL +
//!   CPU-usage thresholds sustained over a window, with network-side rate
//!   feedback for shifting back. (The *network-controlled* twin lives in
//!   `inc_hw::NetRateController` because it is embedded in the device
//!   classifier, exactly as in the paper.)
//! * [`run_host_controlled`] / [`Timeline`] — the experiment harness that
//!   plays the controller daemon against a simulation (Figures 6 and 7).
//! * [`FleetController`] / [`run_fleet_controlled`] — the multi-application
//!   scheduler placing programs across a capacity-bounded device fabric
//!   (one device per ToR, §9.4) via a greedy benefit-per-capacity
//!   knapsack over (app × device) candidates.
//! * [`PlacementAnalysis`] — the §8 energy-model questions and tipping
//!   point.
//! * [`OnDemandEnvelope`] — the Figure 5 composite power curve.
//! * [`TorRack`] — the §9.4 ToR-switch analysis.
//! * [`apps`] — calibrated analytic power/throughput models of every
//!   deployment in Figure 3.
//!
//! # Examples
//!
//! ```
//! use inc_ondemand::apps::{crossover, kvs_models};
//!
//! // The Figure 3(a) crossing point: ~80 Kpps.
//! let models = kvs_models();
//! let x = crossover(&models[0], &models[1], 1e6).unwrap();
//! assert!((60_000.0..110_000.0).contains(&x));
//! ```

pub mod apps;
pub mod arbiter;
pub mod decision;
pub mod envelope;
pub mod fleet;
pub mod host;
pub mod system;
pub mod tor;

pub use apps::Deployment;
pub use arbiter::{ArbiterConfig, ArbiterStats, ArbitrationMode, HierarchicalController};
pub use decision::{dns_analysis, kvs_analysis, PlacementAnalysis};
pub use envelope::{EnvelopePoint, OnDemandEnvelope};
pub use fleet::{
    AdmissionDecision, ClaimPlan, ClaimPolicy, EntitlementPolicy, FleetApp, FleetController,
    FleetControllerConfig, FleetSample, FleetScheduler, FleetShift, Objective, PriceRule,
    ShiftReason, TenureEstimator, TenurePolicy,
};
pub use host::{HostController, HostControllerConfig, HostSample, Shift};
pub use system::{
    run_fleet_controlled, run_fleet_controlled_with, run_host_controlled, run_host_controlled_with,
    AppObservation, FleetTimeline, IntervalObservation, RowLog, Timeline, TimelineRow,
};
pub use tor::TorRack;

// Re-export the pieces of the on-demand interface that live lower in the
// stack, so downstream users have one import surface.
pub use inc_hw::{
    DeviceFabric, DeviceId, HopTier, NetControllerConfig, NetRateController, Placement,
    RateTrigger, TierCost, Topology,
};
