//! Analytic deployment models of the three case-study applications.
//!
//! The Figure 3 and Figure 5 sweeps cover offered rates up to line rate
//! (13 Mpps); regenerating them point-by-point with the event simulator
//! would be wasteful, so each deployment also exposes a *steady-state*
//! power model built from the same calibration constants the simulation
//! nodes use. The simulator validates spot points against these curves
//! (see `tests/model_vs_sim.rs`).

use inc_power::{calib, CpuModel};

/// A named power-versus-rate deployment model.
#[derive(Clone, Debug)]
pub struct Deployment {
    /// Display name, matching the paper's legend.
    pub name: &'static str,
    /// Peak sustainable rate, packets (messages, queries) per second.
    pub peak_pps: f64,
    /// Idle power, watts.
    pub idle_w: f64,
    kind: Kind,
}

#[derive(Clone, Debug)]
enum Kind {
    /// Host software: CPU model + NIC, utilisation driven by rate.
    Software {
        cpu: CpuModel,
        nic_w: f64,
        /// Core-seconds consumed per request.
        core_s_per_req: f64,
        /// A polling (DPDK) deployment keeps one core at 100 %.
        polling: bool,
    },
    /// An accelerator card inside a host: host idle + card power.
    CardInHost {
        host_idle_w: f64,
        card_idle_w: f64,
        card_dyn_max_w: f64,
    },
    /// The card alone (the "standalone" curves of Figure 3).
    CardStandalone {
        card_idle_w: f64,
        card_dyn_max_w: f64,
    },
}

impl Deployment {
    /// Power at offered rate `pps` (clamped to the peak).
    pub fn power_w(&self, pps: f64) -> f64 {
        let r = pps.clamp(0.0, self.peak_pps);
        match &self.kind {
            Kind::Software {
                cpu,
                nic_w,
                core_s_per_req,
                polling,
            } => {
                let mut util = r * core_s_per_req;
                if *polling {
                    util = util.max(1.0);
                }
                cpu.power_w(util) + nic_w
            }
            Kind::CardInHost {
                host_idle_w,
                card_idle_w,
                card_dyn_max_w,
            } => host_idle_w + card_idle_w + card_dyn_max_w * (r / self.peak_pps),
            Kind::CardStandalone {
                card_idle_w,
                card_dyn_max_w,
            } => card_idle_w + card_dyn_max_w * (r / self.peak_pps),
        }
    }

    /// Dynamic power at `pps` (above idle).
    pub fn dynamic_w(&self, pps: f64) -> f64 {
        self.power_w(pps) - self.idle_w
    }

    /// Operations per watt at `pps`.
    pub fn ops_per_watt(&self, pps: f64) -> f64 {
        inc_power::ops_per_watt(pps.min(self.peak_pps), self.power_w(pps))
    }

    fn software(
        name: &'static str,
        cpu: CpuModel,
        nic_w: f64,
        peak_pps: f64,
        polling: bool,
    ) -> Self {
        let cores = cpu.cores as f64;
        let kind = Kind::Software {
            cpu,
            nic_w,
            core_s_per_req: cores / peak_pps,
            polling,
        };
        let mut d = Deployment {
            name,
            peak_pps,
            idle_w: 0.0,
            kind,
        };
        d.idle_w = d.power_w(0.0);
        d
    }

    fn card_in_host(
        name: &'static str,
        card_idle_w: f64,
        card_dyn_max_w: f64,
        peak_pps: f64,
    ) -> Self {
        Deployment {
            name,
            peak_pps,
            idle_w: calib::I7_PLATFORM_IDLE_W + card_idle_w,
            kind: Kind::CardInHost {
                host_idle_w: calib::I7_PLATFORM_IDLE_W,
                card_idle_w,
                card_dyn_max_w,
            },
        }
    }

    fn standalone(
        name: &'static str,
        card_idle_w: f64,
        card_dyn_max_w: f64,
        peak_pps: f64,
    ) -> Self {
        Deployment {
            name,
            peak_pps,
            idle_w: card_idle_w,
            kind: Kind::CardStandalone {
                card_idle_w,
                card_dyn_max_w,
            },
        }
    }
}

/// One software deployment with one (single-core) libpaxos worker: the
/// core-seconds per request equal `1 / peak`.
fn software_single_core(
    name: &'static str,
    cpu: CpuModel,
    nic_w: f64,
    peak_pps: f64,
    polling: bool,
) -> Deployment {
    let kind = Kind::Software {
        cpu,
        nic_w,
        core_s_per_req: 1.0 / peak_pps,
        polling,
    };
    let mut d = Deployment {
        name,
        peak_pps,
        idle_w: 0.0,
        kind,
    };
    d.idle_w = d.power_w(0.0);
    d
}

/// The Figure 3(a) deployments: memcached, LaKe in-host, LaKe standalone.
pub fn kvs_models() -> Vec<Deployment> {
    vec![
        Deployment::software(
            "memcached",
            CpuModel::i7_6700k(),
            calib::MELLANOX_NIC_W,
            calib::MEMCACHED_PEAK_PPS,
            false,
        ),
        Deployment::card_in_host(
            "LaKe",
            calib::LAKE_STANDALONE_IDLE_W,
            calib::LAKE_DYNAMIC_MAX_W,
            calib::LAKE_LINE_RATE_PPS,
        ),
        Deployment::standalone(
            "LaKe standalone",
            calib::LAKE_STANDALONE_IDLE_W,
            calib::LAKE_DYNAMIC_MAX_W,
            calib::LAKE_LINE_RATE_PPS,
        ),
    ]
}

/// The memcached curve with the Intel X520 NIC (§4.2: crossover moves past
/// 300 Kpps, peak drops).
pub fn kvs_memcached_x520() -> Deployment {
    Deployment::software(
        "memcached (X520)",
        CpuModel::i7_6700k_x520(),
        calib::INTEL_X520_NIC_W,
        700_000.0,
        false,
    )
}

/// The Figure 3(b) deployments: eight curves (four per role).
pub fn paxos_models() -> Vec<Deployment> {
    let i7 = CpuModel::i7_6700k_single_core_service;
    vec![
        software_single_core(
            "libpaxos Leader",
            i7(),
            calib::INTEL_X520_NIC_W,
            calib::LIBPAXOS_LEADER_PEAK_MPS,
            false,
        ),
        software_single_core(
            "DPDK Leader",
            CpuModel::i7_6700k(),
            calib::INTEL_X520_NIC_W,
            calib::DPDK_LEADER_PEAK_MPS,
            true,
        ),
        Deployment::card_in_host(
            "P4xos Leader",
            calib::P4XOS_STANDALONE_IDLE_W,
            calib::P4XOS_DYNAMIC_MAX_W,
            calib::P4XOS_FPGA_PEAK_MPS,
        ),
        Deployment::standalone(
            "Standalone Leader",
            calib::P4XOS_STANDALONE_IDLE_W,
            calib::P4XOS_DYNAMIC_MAX_W,
            calib::P4XOS_FPGA_PEAK_MPS,
        ),
        software_single_core(
            "libpaxos Acceptor",
            i7(),
            calib::INTEL_X520_NIC_W,
            calib::LIBPAXOS_ACCEPTOR_PEAK_MPS,
            false,
        ),
        software_single_core(
            "DPDK Acceptor",
            CpuModel::i7_6700k(),
            calib::INTEL_X520_NIC_W,
            calib::DPDK_ACCEPTOR_PEAK_MPS,
            true,
        ),
        Deployment::card_in_host(
            "P4xos Acceptor",
            calib::P4XOS_STANDALONE_IDLE_W,
            calib::P4XOS_DYNAMIC_MAX_W,
            calib::P4XOS_FPGA_PEAK_MPS,
        ),
        Deployment::standalone(
            "Standalone Acceptor",
            calib::P4XOS_STANDALONE_IDLE_W,
            calib::P4XOS_DYNAMIC_MAX_W,
            calib::P4XOS_FPGA_PEAK_MPS,
        ),
    ]
}

/// The Figure 3(c) deployments: NSD, Emu in-host, Emu standalone.
pub fn dns_models() -> Vec<Deployment> {
    vec![
        Deployment::software(
            "NSD (SW)",
            CpuModel::i7_6700k_nsd(),
            calib::INTEL_X520_NIC_W,
            calib::NSD_PEAK_RPS,
            false,
        ),
        Deployment::card_in_host(
            "Emu (HW)",
            calib::EMU_DNS_STANDALONE_IDLE_W,
            calib::EMU_DNS_DYNAMIC_MAX_W,
            calib::EMU_DNS_PEAK_RPS,
        ),
        Deployment::standalone(
            "Standalone",
            calib::EMU_DNS_STANDALONE_IDLE_W,
            calib::EMU_DNS_DYNAMIC_MAX_W,
            calib::EMU_DNS_PEAK_RPS,
        ),
    ]
}

/// Finds the crossover rate between a software and a hardware deployment
/// (the §4 "crossing point").
pub fn crossover(sw: &Deployment, hw: &Deployment, hi_pps: f64) -> Option<f64> {
    inc_power::crossover_fn(|r| sw.power_w(r), |r| hw.power_w(r), 0.0, hi_pps)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find<'a>(models: &'a [Deployment], name: &str) -> &'a Deployment {
        models.iter().find(|d| d.name == name).expect("model")
    }

    #[test]
    fn kvs_idle_levels_match_figure_3a() {
        let models = kvs_models();
        let mc = find(&models, "memcached");
        let lake = find(&models, "LaKe");
        assert!((mc.idle_w - 39.0).abs() < 0.1, "{}", mc.idle_w);
        assert!((lake.idle_w - 58.7).abs() < 0.5, "{}", lake.idle_w);
        // LaKe stays nearly flat to line rate.
        assert!(lake.power_w(13e6) - lake.idle_w <= 2.0 + 1e-9);
    }

    #[test]
    fn kvs_crossover_near_80kpps() {
        let models = kvs_models();
        let mc = find(&models, "memcached");
        let lake = find(&models, "LaKe");
        let x = crossover(mc, lake, 1e6).expect("must cross");
        assert!(
            (60_000.0..110_000.0).contains(&x),
            "crossover at {x} pps, expected ≈80 Kpps"
        );
    }

    #[test]
    fn kvs_x520_crossover_moves_past_300kpps() {
        let models = kvs_models();
        let lake = find(&models, "LaKe");
        let x520 = kvs_memcached_x520();
        let x = crossover(&x520, lake, 1e6).expect("must cross");
        assert!(x > 300_000.0, "crossover at {x}");
        // But the X520 host peaks lower (§4.2).
        assert!(x520.peak_pps < calib::MEMCACHED_PEAK_PPS);
    }

    #[test]
    fn paxos_crossover_near_150kpps() {
        let models = paxos_models();
        let lib = find(&models, "libpaxos Acceptor");
        let p4 = find(&models, "P4xos Acceptor");
        let x = crossover(lib, p4, 1e6).expect("must cross");
        assert!(
            (100_000.0..200_000.0).contains(&x),
            "crossover at {x}, expected ≈150 Kpps"
        );
    }

    #[test]
    fn dpdk_power_high_and_flat() {
        let models = paxos_models();
        let dpdk = find(&models, "DPDK Acceptor");
        let idle = dpdk.power_w(0.0);
        let full = dpdk.power_w(dpdk.peak_pps);
        // §4.3: "high even under low load, and remains almost constant".
        assert!(idle > 60.0, "{idle}");
        assert!((full - idle) / idle < 0.05, "idle {idle} full {full}");
    }

    #[test]
    fn p4xos_in_host_10w_below_lake() {
        let kvs = kvs_models();
        let paxos = paxos_models();
        let lake = find(&kvs, "LaKe");
        let p4 = find(&paxos, "P4xos Acceptor");
        let gap = lake.idle_w - p4.idle_w;
        assert!((9.0..12.0).contains(&gap), "gap {gap}");
    }

    #[test]
    fn dns_matches_section_4_4() {
        let models = dns_models();
        let nsd = find(&models, "NSD (SW)");
        let emu = find(&models, "Emu (HW)");
        // Emu: 47.5 W idle rising to less than 48 W.
        assert!((emu.idle_w - 47.5).abs() < 0.1);
        assert!(emu.power_w(emu.peak_pps) < 48.0 + 1e-9);
        // Idle server below 40 W; crossover under 200 Kpps; peak ~2x Emu.
        assert!(nsd.idle_w < 40.0);
        let x = crossover(nsd, emu, 1e6).expect("must cross");
        assert!(x < 200_000.0, "crossover {x}");
        let ratio = nsd.power_w(nsd.peak_pps) / emu.power_w(emu.peak_pps);
        assert!((1.7..2.5).contains(&ratio), "peak ratio {ratio}");
    }

    #[test]
    fn standalone_curves_exclude_host() {
        let models = kvs_models();
        let in_host = find(&models, "LaKe");
        let alone = find(&models, "LaKe standalone");
        let gap = in_host.power_w(1e6) - alone.power_w(1e6);
        assert!((gap - calib::I7_PLATFORM_IDLE_W).abs() < 1e-9);
    }

    #[test]
    fn efficiency_ladder_matches_section_6() {
        use inc_power::EfficiencyClass;
        let models = paxos_models();
        let lib = find(&models, "libpaxos Acceptor");
        let p4 = find(&models, "Standalone Acceptor");
        // Software: 10K's msg/W (on its dynamic power, §6's comparison
        // basis); FPGA standalone: 100K's msg/W.
        let sw_dyn =
            inc_power::ops_per_dynamic_watt(lib.peak_pps, lib.power_w(lib.peak_pps), lib.idle_w)
                .unwrap();
        assert_eq!(EfficiencyClass::of(sw_dyn), EfficiencyClass::TensOfK);
        let fpga = p4.ops_per_watt(p4.peak_pps);
        assert_eq!(EfficiencyClass::of(fpga), EfficiencyClass::HundredsOfK);
    }
}
