//! Multi-application on-demand scheduling over a fabric of devices.
//!
//! §9 evaluates each application with the programmable device to itself;
//! at production scale devices are shared, capacity-bounded resources —
//! and §9.4 widens the view from one card to a rack, where every ToR
//! hosts its own device and the controller decides *where* a program
//! runs, not just *whether* it is offloaded. The [`FleetController`]
//! extends the single-app [`HostController`] design to that fleet: every
//! sampling interval it reads one [`FleetSample`] per application, prices
//! each app's offload benefit with its §8 [`PlacementAnalysis`] at the
//! measured rate, applies the [`DeviceFabric`]'s locality haircut for
//! placements away from the app's home ToR, and solves a greedy
//! benefit-per-capacity-unit knapsack over the **(app × device)**
//! candidate set.
//!
//! The anti-flapping machinery is the [`HostController`]'s, generalised:
//!
//! * a *sustain window* — an app must stay profitable for
//!   [`FleetControllerConfig::sustain_samples`] consecutive samples before
//!   it may be offloaded ("avoiding harsh decisions based on spikes and
//!   outliers"), and must stay *un*profitable as long before it is pulled
//!   back;
//! * *asymmetric thresholds* — offload starts above
//!   [`FleetControllerConfig::min_benefit_w`] but eviction only below
//!   `min_benefit_w * evict_fraction`, leaving a dead band;
//! * *stickiness* — a resident app competes in the knapsack with its score
//!   **on its current device** multiplied by
//!   [`FleetControllerConfig::stickiness`], so a marginal newcomer cannot
//!   displace an incumbent of nearly equal value — and, equally, an app
//!   cannot ping-pong between ToRs: a move to another device is priced
//!   like a fresh offload and must beat the app's own sticky incumbent
//!   score. A clearly better alternative still wins: arbitration, not
//!   tenure;
//! * an explicit *migration cost* — reprogramming a device is not free
//!   (§9.2: reconfiguration halts the dataplane, and a moved program
//!   re-warms its state), so any move **between devices** is charged
//!   [`FleetControllerConfig::migration_cost_j`] amortised over the
//!   expected tenure of the new placement
//!   ([`FleetControllerConfig::expected_tenure_samples`] sampling
//!   intervals): the candidate's benefit is debited by
//!   `migration_cost_j / (tenure × interval)` watts. A hop that is worth
//!   less per interval than the switchover it triggers never happens,
//!   which suppresses the rack-to-rack ping-pong that stickiness alone
//!   cannot price (stickiness is a ratio; the debit is absolute joules).
//!
//! Rate feedback follows §9.1: while an app runs in software its offered
//! rate is measured at the host ([`FleetSample::offered_pps`]); once it is
//! hardware-resident the controller trusts only the network-measured rate
//! ([`HostSample::hw_app_rate`]), "otherwise, the shift may be
//! inefficient, or cause a workload to bounce back and forth".
//!
//! # Fair sharing and admission control
//!
//! A pure benefit-maximising knapsack lets one high-benefit tenant hold a
//! contended device forever while an also-profitable rival waits — at
//! production scale the switch is a shared resource, and (following Gray's
//! *Distributed Computing Economics*) placement must be arbitrated by
//! explicit share accounting, not raw throughput. The controller layers
//! **weighted dominant-resource fairness** over the knapsack:
//!
//! * every [`FleetApp`] carries a fair-share [`FleetApp::weight`]; a
//!   tenant's *dominant share* is the largest budget fraction its program
//!   occupies on its device (see `inc_hw::ResourceShares`), and its
//!   *entitlement* is `weight / Σ weights` over the currently contending
//!   tenants;
//! * a software tenant whose benefit stays above the floor but who gets
//!   no capacity is **queued** ([`AdmissionDecision::Queue`]); once it has
//!   been queued for its weighted starvation window
//!   (`starvation_window / weight` samples, floored by the sustain
//!   window) it files a *claim*: the scheduler plans a hand-over on every
//!   feasible device, **clipping** over-entitled incumbents (dominant
//!   share above entitlement) — most over-weighted-share first — until
//!   the claimant fits, then executes the plan the configured
//!   [`ClaimPolicy`] prefers. The standard policy is **min-cost**: the
//!   device minimising the total clipped-incumbent benefit plus the
//!   migration debits of everyone who must move — fairness buys the
//!   claimant its entitlement at the smallest energy price, instead of
//!   evicting whoever happens to hold the claimant's own favourite
//!   device ([`ClaimPolicy::BestScore`], kept for comparison);
//! * a fairness-placed tenant holds *tenure* until it leaves its device:
//!   it cannot be displaced by a raw-score preemption, only by a rival's
//!   own sustained claim or by its own low-benefit eviction (tenure
//!   converts preemption into claim-based hand-over). Because device
//!   programs are all-or-nothing, fair shares are realised **in time**:
//!   two claimants alternating at their weighted windows converge to
//!   device-time shares proportional to their weights;
//! * a tenant whose demand fits *no* device even empty (`cost_units > 1`
//!   or an unparseable header depth on every ToR) is rejected up front
//!   ([`AdmissionDecision::Reject`]): it never enters the candidate set,
//!   never queues, and never causes a shift — back-pressure is surfaced
//!   through [`FleetTimeline`](crate::system::FleetTimeline) instead of
//!   being discovered by thrash.
//!
//! Every recorded [`FleetShift`] carries a [`ShiftReason`] so timeline
//! analysis can tell benefit-driven moves from fairness-driven ones.
//!
//! [`HostController`]: crate::host::HostController

use inc_hw::{DeviceFabric, DeviceId, Placement, ProgramResources};
use inc_sim::Nanos;

use crate::decision::PlacementAnalysis;
use crate::host::HostSample;

/// The scheduler's pricing formulas, factored out of [`FleetController`]
/// so the incremental [`HierarchicalController`] scores candidates with
/// bit-identical arithmetic (the equivalence tests depend on the two
/// engines never drifting apart on a single float).
///
/// [`HierarchicalController`]: crate::arbiter::HierarchicalController
pub(crate) mod pricing {
    use super::*;

    /// Estimated power saved by offloading `app` at `rate_pps` (§8
    /// dynamic terms), before any locality penalty. Watts, regardless of
    /// the configured objective.
    pub(crate) fn raw_benefit_w(app: &FleetApp, rate_pps: f64) -> f64 {
        let (sw, hw) = app.analysis.energy_per_second(rate_pps);
        sw - hw
    }

    /// The objective-priced raw benefit of `app` at `rate_pps`: the §8
    /// watts pushed through [`Objective::value_of_w`]. Identical to
    /// [`raw_benefit_w`] under [`Objective::Joules`].
    pub(crate) fn raw_value(config: &FleetControllerConfig, app: &FleetApp, rate_pps: f64) -> f64 {
        config.objective.value_of_w(raw_benefit_w(app, rate_pps))
    }

    /// The objective value of placing a seat whose objective-priced raw
    /// benefit is `raw_value` on `at`: the raw value behind the
    /// topology's locality haircut, minus the objective-priced detour
    /// cost. The one formula both controllers score remote seats with —
    /// callers that cache the raw value (the incremental arbiter) and
    /// callers that recompute it must go through here so a single float
    /// never drifts between the engines.
    pub(crate) fn effective_value_of(
        config: &FleetControllerConfig,
        fabric: &DeviceFabric,
        home: DeviceId,
        at: DeviceId,
        raw_value: f64,
        rate_pps: f64,
    ) -> f64 {
        raw_value * fabric.benefit_factor(home, at)
            - config.objective.detour_value(fabric, home, at, rate_pps)
    }

    /// The objective value of placing `app` on `device`
    /// ([`effective_value_of`] with the raw value computed in place).
    /// Under [`Objective::Joules`] this is the historical
    /// `effective_benefit_w` in watts, bit for bit.
    pub(crate) fn effective_benefit_w(
        config: &FleetControllerConfig,
        fabric: &DeviceFabric,
        app: &FleetApp,
        device: DeviceId,
        rate_pps: f64,
    ) -> f64 {
        effective_value_of(
            config,
            fabric,
            app.home,
            device,
            raw_value(config, app, rate_pps),
            rate_pps,
        )
    }

    /// The objective-priced offload floor: what a candidate's effective
    /// value must clear ([`FleetControllerConfig::min_benefit_w`] under
    /// [`Objective::Joules`]).
    pub(crate) fn floor_value(config: &FleetControllerConfig) -> f64 {
        config.objective.value_of_w(config.min_benefit_w)
    }

    /// The amortised switchover debit of a placement expected to hold
    /// `tenure_samples` sampling intervals, watts.
    pub(crate) fn migration_w_for(config: &FleetControllerConfig, tenure_samples: f64) -> f64 {
        if config.migration_cost_j <= 0.0 {
            return 0.0;
        }
        config.migration_cost_j / (tenure_samples.max(1.0) * config.interval.as_secs_f64())
    }

    /// The amortised switchover debit at the *configured* tenure, watts
    /// (the [`TenurePolicy::Fixed`] debit, and the learned policy's
    /// fallback before an app has any shift history).
    pub(crate) fn migration_w(config: &FleetControllerConfig) -> f64 {
        migration_w_for(config, f64::from(config.expected_tenure_samples.max(1)))
    }

    /// `benefit_w` per capacity unit of `app`'s demand on `device` (the
    /// knapsack ranking key), with the cost floored so a zero-demand app
    /// yields an enormous finite score rather than a 0/0 NaN.
    pub(crate) fn per_capacity(
        fabric: &DeviceFabric,
        app: &FleetApp,
        device: DeviceId,
        benefit_w: f64,
    ) -> f64 {
        let cost = fabric
            .device(device)
            .cost_units(&app.demand)
            .max(f64::MIN_POSITIVE);
        benefit_w / cost
    }

    /// Summed weights of the tenants contending for the fabric under the
    /// given residency view, with `include` always counted (see
    /// [`FleetController::entitlement`]).
    pub(crate) fn contending_weight(
        apps: &[FleetApp],
        starved: &[u32],
        include: usize,
        resident: impl Fn(usize) -> bool,
    ) -> f64 {
        (0..apps.len())
            .filter(|&j| j == include || resident(j) || starved[j] > 0)
            .map(|j| apps[j].weight)
            .sum()
    }

    /// Plans a fairness hand-over for `app` on every feasible device of
    /// the assignment described by `fabric`/`resident_on` (see
    /// [`FleetController::claim_plans`]). `protected` marks incumbents a
    /// claim may not clip; `migration_value_of` prices each tenant's
    /// switchover in objective units (per-app under
    /// [`TenurePolicy::Learned`], the flat config debit under
    /// [`TenurePolicy::Fixed`]).
    #[allow(clippy::too_many_arguments)] // free function shared by both controllers
    pub(crate) fn plan_handovers(
        config: &FleetControllerConfig,
        apps: &[FleetApp],
        starved: &[u32],
        fabric: &DeviceFabric,
        resident_on: impl Fn(usize) -> Option<DeviceId>,
        protected: impl Fn(usize) -> bool,
        migration_value_of: impl Fn(usize) -> f64,
        app: usize,
        rates: &[f64],
    ) -> Vec<ClaimPlan> {
        let n = apps.len();
        let total_w = contending_weight(apps, starved, app, |j| resident_on(j).is_some());
        let floor = floor_value(config);
        let mut plans = Vec::new();
        for d in fabric.device_ids() {
            if !fabric.is_online(d) {
                continue;
            }
            if effective_benefit_w(config, fabric, &apps[app], d, rates[app]) < floor {
                continue;
            }
            // The share a seat counts for against its entitlement. Under
            // tier-weighted entitlements a remote seat is discounted by
            // the locality factor of its distance — a cross-core seat
            // "occupies" less of the fleet than a home-rack one, so far
            // incumbents are clipped later and claimants must starve
            // longer to displace them.
            let seat_share = |j: usize| -> f64 {
                let share = fabric.device(d).dominant_share(j as u64);
                match config.entitlement {
                    EntitlementPolicy::Uniform => share,
                    EntitlementPolicy::TierWeighted => {
                        share * fabric.benefit_factor(apps[j].home, d)
                    }
                }
            };
            // Simulate the clip sequence on a scratch ledger: release the
            // most over-weighted over-entitled incumbents until the
            // claimant fits (or the clippable set runs out).
            let mut ledger = fabric.device(d).clone();
            let mut clips: Vec<usize> = Vec::new();
            if ledger.admit(app as u64, apps[app].demand).is_err() {
                let mut over: Vec<usize> = (0..n)
                    .filter(|&j| {
                        resident_on(j) == Some(d)
                            && !protected(j)
                            && seat_share(j) > apps[j].weight / total_w
                    })
                    .collect();
                over.sort_by(|&a, &b| {
                    let sa = seat_share(a) / apps[a].weight;
                    let sb = seat_share(b) / apps[b].weight;
                    sb.total_cmp(&sa).then(a.cmp(&b))
                });
                let mut fits = false;
                for j in over {
                    ledger.release(j as u64);
                    clips.push(j);
                    if ledger.admit(app as u64, apps[app].demand).is_ok() {
                        fits = true;
                        break;
                    }
                }
                if !fits {
                    continue;
                }
            }
            let clipped_benefit_w = clips
                .iter()
                .map(|&j| effective_benefit_w(config, fabric, &apps[j], d, rates[j]))
                .sum();
            // Under the fixed policy every debit is the same, so the sum
            // is kept as a multiply (bit-compatible with the historical
            // arithmetic); per-app estimates must genuinely be summed.
            let migration_w = match config.tenure {
                TenurePolicy::Fixed => {
                    config.objective.value_of_w(migration_w(config)) * (clips.len() + 1) as f64
                }
                TenurePolicy::Learned { .. } => {
                    clips.iter().map(|&j| migration_value_of(j)).sum::<f64>()
                        + migration_value_of(app)
                }
            };
            plans.push(ClaimPlan {
                device: d,
                migration_w,
                clips,
                clipped_benefit_w,
                score: per_capacity(
                    fabric,
                    &apps[app],
                    d,
                    effective_benefit_w(config, fabric, &apps[app], d, rates[app]),
                ),
            });
        }
        plans
    }

    /// Orders hand-over plans by the given policy; the first entry is
    /// the one a claim executes.
    pub(crate) fn order_plans(plans: &mut [ClaimPlan], policy: ClaimPolicy) {
        match policy {
            ClaimPolicy::BestScore => {
                plans.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.device.cmp(&b.device)))
            }
            ClaimPolicy::MinCost => plans.sort_by(|a, b| {
                a.total_cost_w()
                    .total_cmp(&b.total_cost_w())
                    .then(b.score.total_cmp(&a.score))
                    .then(a.device.cmp(&b.device))
            }),
        }
    }

    /// Queued samples after which a tenant of `weight` files a fairness
    /// claim: the starvation window scaled down by the weight, floored
    /// by the sustain window.
    pub(crate) fn starvation_threshold(config: &FleetControllerConfig, weight: f64) -> u32 {
        let window = config.starvation_window;
        if window == u32::MAX {
            return u32::MAX;
        }
        let scaled = (f64::from(window) / weight).ceil();
        let scaled = if scaled >= f64::from(u32::MAX) {
            u32::MAX
        } else {
            scaled as u32
        };
        scaled.max(config.sustain_samples).max(1)
    }
}

/// One schedulable application sharing the device fabric.
#[derive(Clone, Debug)]
pub struct FleetApp {
    /// Human-readable name (timelines, logs).
    pub name: String,
    /// Device resources the app's dataplane program occupies when
    /// offloaded (its capacity claim — the same on every device).
    pub demand: ProgramResources,
    /// The §8 energy analysis used to price the offload benefit at a
    /// given rate.
    pub analysis: PlacementAnalysis,
    /// The device on the app's own ToR: placements elsewhere pay the
    /// fabric's cross-ToR penalty.
    pub home: DeviceId,
    /// Fair-share weight (must be finite and positive; 1.0 = an equal
    /// tenant). Weight does **not** scale the knapsack score — benefit
    /// still decides *who wins uncontended capacity* — it scales the
    /// tenant's DRF entitlement and shortens its starvation window
    /// (`starvation_window / weight`), so a weight-2 tenant reclaims a
    /// contended device twice as fast and converges to twice the
    /// device-time share of a weight-1 rival.
    pub weight: f64,
}

/// The controller's verdict on a tenant's capacity demand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Resident on a device, or free to compete for one.
    Admit,
    /// Wants capacity (sustained profitable demand in software) but must
    /// wait for room: the back-pressure state.
    Queue,
    /// The demand fits no device in the fabric even when empty; the
    /// tenant will never be placed and never queues.
    Reject,
}

/// How a fairness claim chooses among feasible hand-over devices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClaimPolicy {
    /// The claimant takes its own best-scoring feasible device,
    /// regardless of what must be clipped there (the original policy;
    /// kept as the baseline the min-cost policy is measured against).
    BestScore,
    /// The claimant takes the feasible device whose hand-over forfeits
    /// the least: total clipped-incumbent benefit plus the migration
    /// debit of every program that must move (clips + the claimant).
    /// Ties break on the claimant's higher score, then the lower device
    /// index.
    ///
    /// The objective deliberately prices only what the hand-over *takes
    /// away* — it does not net out the claimant's own per-device benefit
    /// differences (that enters only as the tie-break), so when the
    /// claimant's delivered benefit varies across devices by more than
    /// the clip totals do, a fleet-net-optimal device can lose to a
    /// cheaper-clip one. Keeping the objective one-sided is what makes
    /// the policy's guarantee simple and testable: a min-cost claim
    /// never clips more incumbent benefit than a best-score claim would
    /// on the same state.
    MinCost,
}

/// One feasible fairness hand-over: where a claimant could be placed,
/// whom that would clip, and what the move forfeits.
#[derive(Clone, Debug)]
pub struct ClaimPlan {
    /// The device the claimant would land on.
    pub device: DeviceId,
    /// Incumbents that must be clipped to software to make room, in clip
    /// order (most over-weighted dominant share first). Empty when the
    /// device already has room.
    pub clips: Vec<usize>,
    /// Summed benefit the clipped incumbents currently deliver on this
    /// device, in objective units (watts under [`Objective::Joules`]):
    /// what the fleet forfeits until they re-place.
    pub clipped_benefit_w: f64,
    /// Amortised switchover debit of the hand-over, in objective units:
    /// one migration charge per clipped incumbent plus one for the
    /// claimant (each tenant's own estimated tenure under
    /// [`TenurePolicy::Learned`]).
    pub migration_w: f64,
    /// The claimant's own knapsack score on this device (the
    /// [`ClaimPolicy::BestScore`] ranking key).
    pub score: f64,
}

impl ClaimPlan {
    /// The hand-over's total price, watts: what [`ClaimPolicy::MinCost`]
    /// minimises.
    pub fn total_cost_w(&self) -> f64 {
        self.clipped_benefit_w + self.migration_w
    }
}

/// Why a recorded placement decision fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShiftReason {
    /// The benefit-per-capacity knapsack: a profitable offload into free
    /// capacity, a raw-score preemption, or a low-benefit eviction.
    Benefit,
    /// Weighted-DRF arbitration: a starved tenant claimed capacity, or
    /// an over-entitled incumbent was clipped to make room for one.
    FairShare,
    /// Admission control: a queued tenant entered capacity that freed up
    /// (the back-pressure queue draining).
    Admission,
    /// Failure response: the hosting device went offline and its tenants
    /// were force-evicted to software (§ the chaos suite's device-kill
    /// scenario). Unlike every other reason, this shift ignores
    /// hysteresis — a dead device's tenants cannot wait out a sustain
    /// window.
    DeviceLoss,
}

/// Per-application controller inputs for one sampling interval.
#[derive(Clone, Copy, Debug)]
pub struct FleetSample {
    /// The host-side signals (RAPL, CPU share, network rate feedback).
    /// The current benefit-priced policy consults only
    /// [`HostSample::hw_app_rate`] (the §9.1 shift-back feedback); the
    /// RAPL and CPU fields are carried for parity with [`HostController`]
    /// and for threshold-style policies layered on top.
    ///
    /// [`HostController`]: crate::host::HostController
    pub host: HostSample,
    /// Offered application rate measured at the host, packets/second.
    /// Authoritative while the app is software-resident; ignored in favour
    /// of [`HostSample::hw_app_rate`] once it is offloaded.
    pub offered_pps: f64,
}

/// The pricing rule behind an [`Objective`]: how the raw §8 watts of an
/// offload and the link power of a placement detour translate into the
/// units the scheduler actually optimises. Factored as a trait so
/// analysis code can price placements under any rule; the controllers
/// consume it through the [`Objective`] enum carried by
/// [`FleetControllerConfig::objective`].
pub trait PriceRule {
    /// Price `watts` of host-side §8 saving (or debit) in objective
    /// units per second. Applied to raw benefits, the offload floor and
    /// migration debits, so scale-only rules degenerate cleanly.
    fn value_of_w(&self, watts: f64) -> f64;

    /// The objective-priced cost of the detour a seat at `at` pays for
    /// an app homed at `home` running `rate_pps` packets/second (zero at
    /// home). Subtracted from the haircut benefit to form the effective
    /// value of a placement.
    fn detour_value(
        &self,
        fabric: &DeviceFabric,
        home: DeviceId,
        at: DeviceId,
        rate_pps: f64,
    ) -> f64;
}

/// What a placement is worth: the currency the fleet scheduler's
/// knapsack, hysteresis floors, migration debits and fairness hand-over
/// prices are all denominated in. Gray's *Distributed Computing
/// Economics* argues placement is a price question, and the price is
/// not always energy — the objective makes the currency pluggable while
/// keeping every decision formula shared between the flat and
/// hierarchical controllers.
///
/// [`Objective::Joules`] is the default and reproduces the historical
/// watts-denominated behaviour bit for bit. A [`Objective::Dollar`]
/// rule with `per_joule > 0` and `per_gb_moved = 0` is a uniform
/// rescaling of every compared quantity, so it makes identical
/// decisions to `Joules`; the economics only diverge when moved bytes
/// are priced ([`Objective::Dollar::per_gb_moved`]) or carbon
/// intensity differs across tiers ([`Objective::Carbon`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Objective {
    /// Maximise estimated energy saving: values are watts (the paper's
    /// §8 objective, the default).
    Joules,
    /// Maximise dollars: energy priced per joule, plus an egress-style
    /// price on every gigabyte a placement detour moves through the
    /// fabric (Gray: "put the computation near the data").
    Dollar {
        /// Dollars per joule of host-side energy (and of detour link
        /// energy). Must be finite and positive.
        per_joule: f64,
        /// Dollars per gigabyte of traffic a remote seat detours
        /// through the fabric. Must be finite and non-negative.
        per_gb_moved: f64,
    },
    /// Minimise carbon: energy priced by the grid intensity of the
    /// power domain it is drawn in, indexed by hop tier.
    Carbon {
        /// Carbon intensity per joule by [`Topology::distance`]
        /// (`[home, intra-pod, inter-pod]`): index 0 prices host-side
        /// power, the seat's tier prices its detour link power. All
        /// entries must be finite and positive.
        ///
        /// [`Topology::distance`]: inc_hw::Topology::distance
        per_joule_by_tier: [f64; 3],
    },
}

impl Objective {
    /// Bytes per detoured packet used to convert a seat's packet rate
    /// into moved gigabytes (the paper's §9.4 1500 B query size).
    pub const DETOUR_PACKET_BYTES: f64 = 1500.0;

    /// Panics unless every price in the rule is usable (finite;
    /// positive where a zero would make the floor degenerate).
    fn validate(&self) {
        match *self {
            Objective::Joules => {}
            Objective::Dollar {
                per_joule,
                per_gb_moved,
            } => {
                assert!(
                    per_joule.is_finite() && per_joule > 0.0,
                    "Dollar per_joule {per_joule} must be finite and positive"
                );
                assert!(
                    per_gb_moved.is_finite() && per_gb_moved >= 0.0,
                    "Dollar per_gb_moved {per_gb_moved} must be finite and non-negative"
                );
            }
            Objective::Carbon { per_joule_by_tier } => {
                for (tier, &p) in per_joule_by_tier.iter().enumerate() {
                    assert!(
                        p.is_finite() && p > 0.0,
                        "Carbon per_joule_by_tier[{tier}] {p} must be finite and positive"
                    );
                }
            }
        }
    }
}

impl PriceRule for Objective {
    fn value_of_w(&self, watts: f64) -> f64 {
        match *self {
            // The identity must literally return its input — no `1.0 ×`
            // — so Joules pricing is the historical arithmetic bit for
            // bit (pinned by the equivalence proptests).
            Objective::Joules => watts,
            Objective::Dollar { per_joule, .. } => per_joule * watts,
            Objective::Carbon { per_joule_by_tier } => per_joule_by_tier[0] * watts,
        }
    }

    fn detour_value(
        &self,
        fabric: &DeviceFabric,
        home: DeviceId,
        at: DeviceId,
        rate_pps: f64,
    ) -> f64 {
        let link_w = fabric.link_energy_w(home, at, rate_pps);
        match *self {
            Objective::Joules => link_w,
            Objective::Dollar {
                per_joule,
                per_gb_moved,
            } => {
                // Request + response cross the detour once each, so a
                // remote seat moves 2 × 1500 B × rate through the fabric
                // per tier it is away from home.
                let gb_per_s = f64::from(fabric.distance(home, at))
                    * 2.0
                    * Objective::DETOUR_PACKET_BYTES
                    * 1e-9
                    * rate_pps;
                per_joule * link_w + per_gb_moved * gb_per_s
            }
            Objective::Carbon { per_joule_by_tier } => {
                per_joule_by_tier[fabric.distance(home, at) as usize] * link_w
            }
        }
    }
}

/// How the scheduler amortises [`FleetControllerConfig::migration_cost_j`]:
/// over a fixed configured tenure, or over each app's own observed
/// placement tenure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TenurePolicy {
    /// Every move is amortised over
    /// [`FleetControllerConfig::expected_tenure_samples`] (the default,
    /// the historical behaviour).
    Fixed,
    /// Each app's tenure is estimated online from its own shift history
    /// (an EWMA of inter-shift gaps, see [`TenureEstimator`]), falling
    /// back to the config constant until a first gap is observed. Sticky
    /// tenants migrate cheaply; flappy ones are debited honestly.
    Learned {
        /// EWMA gain in `(0, 1]`: the weight of the newest inter-shift
        /// gap.
        alpha: f64,
    },
}

impl TenurePolicy {
    /// EWMA gain used to fold observed inter-shift gaps: the configured
    /// gain under [`TenurePolicy::Learned`]; a default 0.3 under
    /// [`TenurePolicy::Fixed`], where the estimate is maintained for
    /// observability but never priced.
    pub fn ewma_alpha(self) -> f64 {
        match self {
            TenurePolicy::Fixed => 0.3,
            TenurePolicy::Learned { alpha } => alpha,
        }
    }
}

/// How a seat's dominant share is counted against its fair-share
/// entitlement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntitlementPolicy {
    /// A seat's dominant share counts at face value wherever it is
    /// placed (the default, the historical behaviour).
    Uniform,
    /// A seat's dominant share is scaled by the locality factor of its
    /// placement (`Topology::benefit_factor`, a function of
    /// `Topology::distance`): a cross-core seat counts for less of the
    /// fleet than a home-rack one, so tenants parked far from home are
    /// clipped later than tenants hogging their own rack.
    TierWeighted,
}

/// Online estimate of one app's placement tenure: an EWMA of the gaps
/// between its recorded [`FleetShift`]s, in sampling intervals. Feeds
/// [`TenurePolicy::Learned`] migration pricing; deterministic — the
/// estimate is a pure fold over the app's shift times, so replaying a
/// trace replays the estimates.
///
/// # Examples
///
/// ```
/// use inc_ondemand::TenureEstimator;
/// use inc_sim::Nanos;
///
/// let mut est = TenureEstimator::new();
/// // No history yet: the config fallback applies.
/// assert_eq!(est.expected_samples(20), 20.0);
/// let interval = Nanos::from_secs(1);
/// est.observe_shift(Nanos::from_secs(5), interval, 0.3);
/// // A single shift has no gap yet — still the fallback.
/// assert_eq!(est.expected_samples(20), 20.0);
/// est.observe_shift(Nanos::from_secs(13), interval, 0.3);
/// // One observed gap of 8 samples seeds the estimate.
/// assert_eq!(est.expected_samples(20), 8.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TenureEstimator {
    /// When the app last shifted (`None` before its first shift).
    last_shift_at: Option<Nanos>,
    /// EWMA of inter-shift gaps in samples (`None` before the first
    /// observed gap).
    ewma_samples: Option<f64>,
}

impl TenureEstimator {
    /// An estimator with no history (the fallback applies).
    pub fn new() -> Self {
        TenureEstimator::default()
    }

    /// Folds a placement shift at `now` into the estimate: the gap since
    /// the previous shift, in `interval`s, enters the EWMA with gain
    /// `alpha`. The first shift only anchors the clock.
    pub fn observe_shift(&mut self, now: Nanos, interval: Nanos, alpha: f64) {
        if let Some(prev) = self.last_shift_at {
            let gap = (now.as_secs_f64() - prev.as_secs_f64()) / interval.as_secs_f64();
            self.ewma_samples = Some(match self.ewma_samples {
                Some(e) => e + alpha * (gap - e),
                None => gap,
            });
        }
        self.last_shift_at = Some(now);
    }

    /// The tenure a new placement of this app is expected to hold, in
    /// sampling intervals: the EWMA estimate clamped to at least one
    /// sample, or `fallback` (the config constant) before any gap has
    /// been observed.
    pub fn expected_samples(&self, fallback: u32) -> f64 {
        match self.ewma_samples {
            Some(e) => e.max(1.0),
            None => f64::from(fallback.max(1)),
        }
    }

    /// The raw EWMA estimate, if any gap has been observed yet.
    pub fn observed_samples(&self) -> Option<f64> {
        self.ewma_samples
    }
}

/// Configuration of the fleet scheduler.
#[derive(Clone, Copy, Debug)]
pub struct FleetControllerConfig {
    /// Sampling interval.
    pub interval: Nanos,
    /// Consecutive samples a condition must hold before a shift.
    pub sustain_samples: u32,
    /// Minimum estimated power saving (watts) for an app to become an
    /// offload candidate on a device (after the locality haircut).
    pub min_benefit_w: f64,
    /// An offloaded app is evicted only when its benefit falls below
    /// `min_benefit_w * evict_fraction` (the hysteresis dead band),
    /// sustained over the window. In `[0, 1]`.
    pub evict_fraction: f64,
    /// Score multiplier for a resident app on its current device
    /// (≥ 1.0). A newcomer — or the same app eyeing a different ToR —
    /// must beat the incumbent score by this factor to displace it.
    pub stickiness: f64,
    /// Consecutive queued samples after which a weight-1 tenant files a
    /// fairness claim (per-tenant windows are `starvation_window /
    /// weight`, floored by `sustain_samples`). The window is the
    /// fairness analogue of the sustain window: long enough that shares
    /// change by deliberate hand-over, not flapping. `u32::MAX` disables
    /// fairness entirely (pure benefit-maximising scheduling).
    pub starvation_window: u32,
    /// The switchover price of reprogramming a device, joules: the §9.2
    /// reconfiguration halt plus the moved program's state re-warm.
    /// Charged — amortised over [`Self::expected_tenure_samples`] — as a
    /// benefit debit on every candidate that would move a *resident* app
    /// to a different device, and as a per-move term in the fairness
    /// claim cost. `0.0` disables migration pricing (moves fight only
    /// the stickiness ratio, the pre-migration-cost behaviour).
    pub migration_cost_j: f64,
    /// Sampling intervals a new placement is expected to hold: the
    /// amortisation horizon of [`Self::migration_cost_j`]. The per-sample
    /// debit is `migration_cost_j / (expected_tenure_samples ×
    /// interval)` watts — a move must be worth at least its switchover
    /// spread over the tenure it buys.
    pub expected_tenure_samples: u32,
    /// How fairness claims choose among feasible hand-over devices.
    pub claim_policy: ClaimPolicy,
    /// The currency every decision is priced in: raw benefits, the
    /// offload floor, detour costs and migration debits all pass
    /// through this rule. [`Objective::Joules`] (the default) is the
    /// historical watts-denominated behaviour bit for bit.
    pub objective: Objective,
    /// How [`Self::migration_cost_j`] is amortised: over the fixed
    /// [`Self::expected_tenure_samples`] (default) or over each app's
    /// own learned tenure estimate.
    pub tenure: TenurePolicy,
    /// How a seat's dominant share is counted against its fair-share
    /// entitlement (uniform by default; optionally discounted by
    /// placement tier).
    pub entitlement: EntitlementPolicy,
}

impl FleetControllerConfig {
    /// A reasonable default: 3-sample sustain (the Figure 6 choice), a
    /// 1 W offload floor, a 2× dead band, 25 % incumbency advantage, a
    /// 20-sample starvation window (fairness as a backstop: transient
    /// contention resolves by benefit, only sustained starvation forces
    /// a fair-share hand-over), a 5 J switchover debit amortised over a
    /// 20-sample tenure, and min-cost hand-overs — priced in
    /// [`Objective::Joules`] with a fixed tenure and uniform
    /// entitlements (the historical behaviour, bit for bit).
    ///
    /// # Examples
    ///
    /// ```
    /// use inc_ondemand::{ClaimPolicy, FleetControllerConfig};
    /// use inc_sim::Nanos;
    ///
    /// let cfg = FleetControllerConfig::standard(Nanos::from_secs(1));
    /// assert_eq!(cfg.sustain_samples, 3);
    /// assert_eq!(cfg.claim_policy, ClaimPolicy::MinCost);
    /// // The eviction threshold sits below the offload floor: the
    /// // hysteresis dead band that keeps marginal tenants from flapping.
    /// assert!(cfg.min_benefit_w * cfg.evict_fraction < cfg.min_benefit_w);
    /// // One interval of tenure must be worth the amortised switchover:
    /// // 5 J over 20 one-second samples is a 0.25 W debit per move.
    /// let debit_w = cfg.migration_cost_j
    ///     / (cfg.expected_tenure_samples as f64 * cfg.interval.as_secs_f64());
    /// assert!((debit_w - 0.25).abs() < 1e-12);
    /// ```
    pub fn standard(interval: Nanos) -> Self {
        FleetControllerConfig {
            interval,
            sustain_samples: 3,
            min_benefit_w: 1.0,
            evict_fraction: 0.5,
            stickiness: 1.25,
            starvation_window: 20,
            migration_cost_j: 5.0,
            expected_tenure_samples: 20,
            claim_policy: ClaimPolicy::MinCost,
            objective: Objective::Joules,
            tenure: TenurePolicy::Fixed,
            entitlement: EntitlementPolicy::Uniform,
        }
    }

    /// Panics unless the economic knobs are usable: a finite
    /// non-negative migration cost, valid objective prices, and a
    /// learned-tenure gain in `(0, 1]`. Both controllers call this at
    /// construction so a bad price fails loudly instead of silently
    /// mis-ranking every candidate.
    pub(crate) fn validate(&self) {
        assert!(
            self.migration_cost_j.is_finite() && self.migration_cost_j >= 0.0,
            "migration_cost_j {} must be finite and non-negative",
            self.migration_cost_j
        );
        self.objective.validate();
        if let TenurePolicy::Learned { alpha } = self.tenure {
            assert!(
                alpha.is_finite() && alpha > 0.0 && alpha <= 1.0,
                "learned-tenure alpha {alpha} must be in (0, 1]"
            );
        }
    }
}

/// A record of one fleet placement decision.
#[derive(Clone, Copy, Debug)]
pub struct FleetShift {
    /// When the decision fired.
    pub at: Nanos,
    /// Index of the app that moved.
    pub app: usize,
    /// The new placement.
    pub to: Placement,
    /// The rate estimate that priced the decision, packets/second.
    pub rate_pps: f64,
    /// The estimated benefit at that rate, in objective units (watts
    /// under the default [`Objective::Joules`]) — penalty-adjusted for
    /// the target device when the shift is an offload.
    pub benefit_w: f64,
    /// What drove the decision: raw benefit, a fair-share claim/clip, or
    /// admission control draining its queue.
    pub reason: ShiftReason,
}

/// The multi-application on-demand scheduler over a device fabric.
///
/// # Examples
///
/// ```
/// use inc_hw::{DeviceFabric, DeviceId, Placement, PipelineBudget, ProgramResources};
/// use inc_ondemand::{
///     dns_analysis, kvs_analysis, FleetApp, FleetController, FleetControllerConfig,
/// };
/// use inc_sim::Nanos;
///
/// let fabric = DeviceFabric::single(PipelineBudget::tofino_like());
/// let apps = vec![
///     FleetApp {
///         name: "kvs".into(),
///         demand: ProgramResources { stages: 7, sram_bytes: 40 << 20, parse_depth_bytes: 96 },
///         analysis: kvs_analysis(),
///         home: DeviceId::LOCAL,
///         weight: 1.0,
///     },
///     FleetApp {
///         name: "dns".into(),
///         demand: ProgramResources { stages: 6, sram_bytes: 20 << 20, parse_depth_bytes: 128 },
///         analysis: dns_analysis(),
///         home: DeviceId::LOCAL,
///         weight: 1.0,
///     },
/// ];
/// let ctl = FleetController::new(
///     FleetControllerConfig::standard(Nanos::from_secs(1)),
///     fabric,
///     apps,
/// );
/// assert_eq!(ctl.placements(), &[Placement::Software, Placement::Software]);
/// ```
#[derive(Clone, Debug)]
pub struct FleetController {
    config: FleetControllerConfig,
    fabric: DeviceFabric,
    apps: Vec<FleetApp>,
    placements: Vec<Placement>,
    up_streaks: Vec<u32>,
    down_streaks: Vec<u32>,
    /// Consecutive samples each app has spent queued (software-placed
    /// with a sustained profitable demand but no capacity).
    starved_streaks: Vec<u32>,
    /// Cumulative queued samples per app over the controller's lifetime
    /// (the back-pressure metric surfaced through the fleet timeline).
    queued_intervals: Vec<u64>,
    /// Whether each resident app holds fair-share tenure (it was placed
    /// by a fairness claim and contention persists).
    fair_hold: Vec<bool>,
    /// Up-front admission verdict: demand unfit on every device.
    rejected: Vec<bool>,
    /// Per-app online tenure estimate (fed by the shift log; priced
    /// only under [`TenurePolicy::Learned`]).
    tenures: Vec<TenureEstimator>,
    shifts: Vec<FleetShift>,
}

impl FleetController {
    /// Creates a scheduler with every app starting in software placement.
    ///
    /// Tenants whose demand fits no device in the fabric even when empty
    /// are rejected up front (see [`FleetController::admission_decision`]):
    /// they are never candidates and never queue.
    ///
    /// # Panics
    ///
    /// Panics if an app's home device is not in the fabric, or if a
    /// weight is not finite and positive.
    pub fn new(config: FleetControllerConfig, fabric: DeviceFabric, apps: Vec<FleetApp>) -> Self {
        for app in &apps {
            assert!(
                app.home.index() < fabric.device_count(),
                "app {:?} is homed at {} but the fabric has {} devices",
                app.name,
                app.home,
                fabric.device_count()
            );
            assert!(
                app.weight.is_finite() && app.weight > 0.0,
                "app {:?} has a non-positive weight {}",
                app.name,
                app.weight
            );
        }
        config.validate();
        let rejected = apps
            .iter()
            .map(|app| {
                fabric
                    .device_ids()
                    .all(|d| fabric.device(d).budget().admit(&app.demand).is_err())
            })
            .collect();
        let n = apps.len();
        FleetController {
            config,
            fabric,
            apps,
            placements: vec![Placement::Software; n],
            up_streaks: vec![0; n],
            down_streaks: vec![0; n],
            starved_streaks: vec![0; n],
            queued_intervals: vec![0; n],
            fair_hold: vec![false; n],
            rejected,
            tenures: vec![TenureEstimator::new(); n],
            shifts: Vec::new(),
        }
    }

    /// Adopts pre-existing placements (e.g. a static deployment the
    /// controller takes over, or a pinned configuration when
    /// `sustain_samples` is `u32::MAX`).
    ///
    /// # Panics
    ///
    /// Panics if the device-resident subset does not fit its devices
    /// (`placements` must be feasible) or its length differs from the
    /// number of apps.
    pub fn with_initial_placements(mut self, placements: &[Placement]) -> Self {
        assert_eq!(placements.len(), self.apps.len());
        self.fabric.clear();
        for (i, &p) in placements.iter().enumerate() {
            if let Placement::Device(d) = p {
                self.fabric
                    .admit(d, i as u64, self.apps[i].demand)
                    .expect("initial placements must fit the fabric");
            }
        }
        self.placements = placements.to_vec();
        self
    }

    /// Current per-app placements, indexed like the `apps` vector.
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// The scheduled applications.
    pub fn apps(&self) -> &[FleetApp] {
        &self.apps
    }

    /// The device fabric (its ledgers reflect the current placements).
    pub fn fabric(&self) -> &DeviceFabric {
        &self.fabric
    }

    /// The configuration.
    pub fn config(&self) -> &FleetControllerConfig {
        &self.config
    }

    /// Marks a fabric device alive or dead (the chaos suite's
    /// device-kill / ToR-partition lever). Tenants of a dead device are
    /// force-evicted to software on the next [`FleetController::sample`]
    /// as [`ShiftReason::DeviceLoss`] shifts, and the device is skipped
    /// as a candidate until revived.
    pub fn set_device_online(&mut self, id: DeviceId, online: bool) {
        self.fabric.set_online(id, online);
    }

    /// Re-targets the offload floor
    /// ([`FleetControllerConfig::min_benefit_w`]) mid-run — the
    /// power-budget knob the chaos suite flaps. A higher floor demands
    /// more §8 savings per offload (a tighter budget); existing tenants
    /// re-justify themselves against it through the ordinary eviction
    /// hysteresis, so a flap shorter than the sustain window moves
    /// nothing.
    ///
    /// # Panics
    ///
    /// Panics if `floor_w` is not finite and non-negative.
    pub fn set_min_benefit_w(&mut self, floor_w: f64) {
        assert!(
            floor_w.is_finite() && floor_w >= 0.0,
            "offload floor must be finite and non-negative"
        );
        self.config.min_benefit_w = floor_w;
    }

    /// The decision log.
    pub fn shifts(&self) -> &[FleetShift] {
        &self.shifts
    }

    /// The current admission verdict for `app`: [`AdmissionDecision::Reject`]
    /// when its demand fits no device even empty (decided up front and
    /// permanent for a fixed fabric), [`AdmissionDecision::Queue`] while
    /// it sustains a profitable demand in software without receiving
    /// capacity, [`AdmissionDecision::Admit`] otherwise.
    pub fn admission_decision(&self, app: usize) -> AdmissionDecision {
        if self.rejected[app] {
            AdmissionDecision::Reject
        } else if self.starved_streaks[app] > 0 {
            AdmissionDecision::Queue
        } else {
            AdmissionDecision::Admit
        }
    }

    /// Consecutive samples `app` has currently spent queued.
    pub fn starved_streak(&self, app: usize) -> u32 {
        self.starved_streaks[app]
    }

    /// Cumulative queued samples per app over the run — the back-pressure
    /// each tenant has absorbed, indexed like the `apps` vector.
    pub fn queued_intervals(&self) -> &[u64] {
        &self.queued_intervals
    }

    /// Queued samples after which `app` files a fairness claim: the
    /// configured starvation window scaled down by the app's weight,
    /// floored by the sustain window (shares must never change faster
    /// than ordinary hysteresis allows).
    pub fn starvation_threshold(&self, app: usize) -> u32 {
        pricing::starvation_threshold(&self.config, self.apps[app].weight)
    }

    /// The weighted-DRF entitlement of `app`: its weight over the summed
    /// weights of every tenant currently contending for the fabric
    /// (resident or queued), itself always included. 1.0 when it would
    /// contend alone.
    pub fn entitlement(&self, app: usize) -> f64 {
        self.apps[app].weight / self.contending_weight(app, |i| self.placements[i].is_offloaded())
    }

    /// Summed weights of the tenants contending for the fabric: those
    /// `resident` under the given view — the current placements when
    /// reporting, the in-progress candidate assignment mid-decision —
    /// or currently queued, with `include` always counted. The one
    /// definition shared by [`FleetController::entitlement`] and the
    /// fairness pass, so the entitlement a claim clips against can never
    /// drift from the one the accessor reports.
    fn contending_weight(&self, include: usize, resident: impl Fn(usize) -> bool) -> f64 {
        pricing::contending_weight(&self.apps, &self.starved_streaks, include, resident)
    }

    /// The dominant share `app` currently holds on its device (0.0 in
    /// software): the quantity fairness compares against
    /// [`FleetController::entitlement`].
    pub fn dominant_share(&self, app: usize) -> f64 {
        self.fabric.dominant_share(app as u64)
    }

    /// The fairness hand-over plans available to `app` against the
    /// **current** placements, given one trusted rate per app: every
    /// device where its penalty-adjusted benefit clears the floor and a
    /// clip sequence of over-entitled incumbents frees enough room, with
    /// the forfeited benefit and migration debits of each. Unordered;
    /// rank with the configured policy's rule ([`ClaimPlan::total_cost_w`]
    /// ascending for min-cost, [`ClaimPlan::score`] descending for
    /// best-score). What a claim would see if it fired this instant —
    /// exposed for analysis and property tests.
    ///
    /// # Panics
    ///
    /// Panics if `rates.len()` differs from the number of apps.
    pub fn claim_plans(&self, app: usize, rates: &[f64]) -> Vec<ClaimPlan> {
        assert_eq!(rates.len(), self.apps.len(), "one rate per app");
        self.plan_handovers(
            &self.fabric,
            |j| self.placements[j].device(),
            |_| false,
            app,
            rates,
        )
    }

    /// Estimated power saved by offloading `app` at `rate_pps` (§8 dynamic
    /// terms): software watts minus network watts, before any locality
    /// penalty. Negative when software is cheaper. Always watts — the
    /// configured objective prices this into decision units.
    pub fn benefit_w(&self, app: usize, rate_pps: f64) -> f64 {
        pricing::raw_benefit_w(&self.apps[app], rate_pps)
    }

    /// The objective value of placing `app` on `device` at `rate_pps`:
    /// the objective-priced raw benefit scaled by the topology's
    /// locality factor (1.0 at home, the hop tier's haircut elsewhere),
    /// minus the objective-priced detour cost at that rate. Under the
    /// default [`Objective::Joules`] this is watts — the historical
    /// `effective_benefit_w` — bit for bit.
    pub fn effective_benefit_w(&self, app: usize, device: DeviceId, rate_pps: f64) -> f64 {
        pricing::effective_benefit_w(
            &self.config,
            &self.fabric,
            &self.apps[app],
            device,
            rate_pps,
        )
    }

    /// The amortised switchover debit at the configured tenure, watts:
    /// the migration cost spread over
    /// [`FleetControllerConfig::expected_tenure_samples`].
    pub fn migration_w(&self) -> f64 {
        pricing::migration_w(&self.config)
    }

    /// The tenure a new placement of `app` is expected to hold, in
    /// sampling intervals: the config constant under
    /// [`TenurePolicy::Fixed`], the app's own EWMA estimate (with the
    /// config constant as fallback) under [`TenurePolicy::Learned`].
    pub fn expected_tenure_samples(&self, app: usize) -> f64 {
        match self.config.tenure {
            TenurePolicy::Fixed => f64::from(self.config.expected_tenure_samples.max(1)),
            TenurePolicy::Learned { .. } => {
                self.tenures[app].expected_samples(self.config.expected_tenure_samples)
            }
        }
    }

    /// The app's online tenure estimator (maintained from the shift log
    /// regardless of policy; priced only under
    /// [`TenurePolicy::Learned`]).
    pub fn tenure_estimator(&self, app: usize) -> &TenureEstimator {
        &self.tenures[app]
    }

    /// The objective-priced switchover debit charged to a move of `app`:
    /// its migration cost amortised over [`Self::expected_tenure_samples`]
    /// and pushed through the objective. Equals [`Self::migration_w`]
    /// under the default fixed-tenure joule pricing.
    pub fn app_migration_w(&self, app: usize) -> f64 {
        self.migration_value(app)
    }

    /// The objective-priced per-app migration debit (the decision-side
    /// form of [`Self::app_migration_w`]). Under `Fixed` tenure this
    /// must reduce to the historical flat debit bit for bit, so the
    /// fixed arm bypasses the estimator entirely.
    fn migration_value(&self, app: usize) -> f64 {
        let watts = match self.config.tenure {
            TenurePolicy::Fixed => pricing::migration_w(&self.config),
            TenurePolicy::Learned { .. } => pricing::migration_w_for(
                &self.config,
                self.tenures[app].expected_samples(self.config.expected_tenure_samples),
            ),
        };
        self.config.objective.value_of_w(watts)
    }

    /// The value of *moving* `app` from its current device to `device`:
    /// the effective value there, debited by the objective-priced
    /// amortised switchover cost. This is what a device-to-device
    /// candidate must clear the floor with and is scored by.
    pub fn move_benefit_w(&self, app: usize, device: DeviceId, rate_pps: f64) -> f64 {
        self.effective_benefit_w(app, device, rate_pps) - self.migration_value(app)
    }

    /// Benefit per capacity unit of placing `app` on `device`: the
    /// knapsack ranking key used by [`FleetController::sample`]. The cost
    /// is floored so a degenerate zero-demand app yields an (enormous)
    /// finite score rather than a NaN from 0/0.
    pub fn score(&self, app: usize, device: DeviceId, rate_pps: f64) -> f64 {
        self.per_capacity(self.effective_benefit_w(app, device, rate_pps), app, device)
    }

    /// `benefit_w` per capacity unit of `app`'s demand on `device`.
    fn per_capacity(&self, benefit_w: f64, app: usize, device: DeviceId) -> f64 {
        pricing::per_capacity(&self.fabric, &self.apps[app], device, benefit_w)
    }

    /// The rate estimate the controller trusts for `app` given its current
    /// placement (§9.1 feedback rule).
    fn trusted_rate(&self, app: usize, s: &FleetSample) -> f64 {
        if self.placements[app].is_offloaded() {
            s.host.hw_app_rate
        } else {
            s.offered_pps
        }
    }

    /// Plans a fairness hand-over for `app` on every feasible device of
    /// the assignment described by `fabric`/`resident_on`: devices where
    /// the claimant's penalty-adjusted benefit clears the floor and
    /// enough over-entitled, unprotected capacity exists. `protected`
    /// marks incumbents a claim may not clip (tenants placed by a claim
    /// in the same decision pass).
    fn plan_handovers(
        &self,
        fabric: &DeviceFabric,
        resident_on: impl Fn(usize) -> Option<DeviceId>,
        protected: impl Fn(usize) -> bool,
        app: usize,
        rates: &[f64],
    ) -> Vec<ClaimPlan> {
        pricing::plan_handovers(
            &self.config,
            &self.apps,
            &self.starved_streaks,
            fabric,
            resident_on,
            protected,
            |j| self.migration_value(j),
            app,
            rates,
        )
    }

    /// Orders hand-over plans by the given policy; the first entry is the
    /// one a claim executes.
    fn order_plans(plans: &mut [ClaimPlan], policy: ClaimPolicy) {
        pricing::order_plans(plans, policy)
    }

    /// Feeds one sample per app; returns the placement changes to execute
    /// (empty most intervals).
    ///
    /// # Panics
    ///
    /// Panics if `samples.len()` differs from the number of apps.
    pub fn sample(&mut self, now: Nanos, samples: &[FleetSample]) -> Vec<(usize, Placement)> {
        assert_eq!(samples.len(), self.apps.len(), "one sample per app");
        let n = self.apps.len();
        let rates: Vec<f64> = (0..n).map(|i| self.trusted_rate(i, &samples[i])).collect();
        let raw_values: Vec<f64> = (0..n)
            .map(|i| pricing::raw_value(&self.config, &self.apps[i], rates[i]))
            .collect();
        let floor = pricing::floor_value(&self.config);

        // Failure response precedes everything else: tenants of a dead
        // (offline) device cannot wait out hysteresis, so they are
        // force-evicted to software before streaks and candidacy run.
        // The eviction resets the evictee's streaks like any other
        // shift, so re-offload onto a live device goes back through the
        // ordinary sustain machinery — bounded by one sustain window,
        // which is the recovery deadline the chaos suite pins.
        let mut decisions: Vec<(usize, Placement)> = Vec::new();
        for i in 0..n {
            if let Placement::Device(d) = self.placements[i] {
                if !self.fabric.is_online(d) {
                    self.fabric.release(i as u64);
                    self.placements[i] = Placement::Software;
                    self.up_streaks[i] = 0;
                    self.down_streaks[i] = 0;
                    self.starved_streaks[i] = 0;
                    self.fair_hold[i] = false;
                    self.tenures[i].observe_shift(
                        now,
                        self.config.interval,
                        self.config.tenure.ewma_alpha(),
                    );
                    self.shifts.push(FleetShift {
                        at: now,
                        app: i,
                        to: Placement::Software,
                        rate_pps: rates[i],
                        benefit_w: raw_values[i],
                        reason: ShiftReason::DeviceLoss,
                    });
                    decisions.push((i, Placement::Software));
                }
            }
        }

        // Streak accounting (the HostController sustain rule, per app).
        // The up-streak — consecutive samples of raw value above the
        // floor since the app's last placement change — gates *entering*
        // a device: a software app's first offload and, equally, a
        // resident app's move to a different ToR. A resident app is
        // additionally judged by the value it actually delivers where
        // it runs (haircut included) for the eviction streak.
        for i in 0..n {
            if raw_values[i] >= floor {
                self.up_streaks[i] = self.up_streaks[i].saturating_add(1);
            } else {
                self.up_streaks[i] = 0;
            }
            match self.placements[i] {
                Placement::Software => self.down_streaks[i] = 0,
                Placement::Device(d) => {
                    let delivered = self.effective_benefit_w(i, d, rates[i]);
                    if delivered < floor * self.config.evict_fraction {
                        self.down_streaks[i] = self.down_streaks[i].saturating_add(1);
                    } else {
                        self.down_streaks[i] = 0;
                    }
                }
            }
        }

        // Candidate set over (app × device): residents keep competing
        // until their eviction condition sustains (even through transient
        // dips — that is the hysteresis); newcomers join only after their
        // benefit sustains. A resident's candidacy on its *current*
        // device carries the stickiness premium; on any other device it
        // is priced like a fresh offload, so cross-ToR moves also fight
        // the hysteresis. Rejected tenants (demand unfit everywhere) are
        // never candidates: admission control keeps them out up front
        // instead of letting them lose the knapsack forever.
        let mut candidates: Vec<(f64, usize, DeviceId)> = Vec::new();
        for (i, &rate) in rates.iter().enumerate() {
            if self.rejected[i] {
                continue;
            }
            match self.placements[i] {
                Placement::Device(cur) => {
                    if self.down_streaks[i] < self.config.sustain_samples {
                        for d in self.fabric.device_ids() {
                            if !self.fabric.is_online(d) {
                                continue;
                            }
                            if d == cur {
                                candidates.push((
                                    self.score(i, d, rate) * self.config.stickiness,
                                    i,
                                    d,
                                ));
                            } else if self.up_streaks[i] >= self.config.sustain_samples
                                && self.move_benefit_w(i, d, rate) >= floor
                            {
                                // A cross-ToR move is a fresh offload
                                // (it needs its own sustained
                                // profitability, so a pinned controller
                                // or a briefly hot app never hops racks)
                                // *and* it pays the switchover: the
                                // candidate is priced net of the
                                // amortised migration debit, so a hop
                                // worth less than the reprogramming it
                                // triggers loses to staying put.
                                candidates.push((
                                    self.per_capacity(self.move_benefit_w(i, d, rate), i, d),
                                    i,
                                    d,
                                ));
                            }
                        }
                    }
                }
                Placement::Software => {
                    if self.up_streaks[i] >= self.config.sustain_samples {
                        for d in self.fabric.device_ids() {
                            if !self.fabric.is_online(d) {
                                continue;
                            }
                            if self.effective_benefit_w(i, d, rate) >= floor {
                                candidates.push((self.score(i, d, rate), i, d));
                            }
                        }
                    }
                }
            }
        }
        // Greedy knapsack: best benefit-per-capacity-unit first. Ties
        // break on the lower app index, then the *nearer* device (an
        // exact score tie between two remote racks — identical budgets
        // behind identical tier factors — must not hand the spill to the
        // far one just because it has a lower index), then the lower
        // device index. Fairness-placed
        // incumbents hold *tenure*: they are pre-seeded onto their
        // device ahead of the score order, so a raw-score rival cannot
        // undo a fair-share hand-over three samples after it happened —
        // it must go through the starvation protocol like everyone else.
        // Tenure lasts until the incumbent leaves its device: its own
        // sustained eviction condition, or a rival's successful claim.
        candidates.sort_by(|a, b| {
            b.0.total_cmp(&a.0)
                .then(a.1.cmp(&b.1))
                .then_with(|| {
                    let da = self.fabric.distance(self.apps[a.1].home, a.2);
                    let db = self.fabric.distance(self.apps[b.1].home, b.2);
                    da.cmp(&db)
                })
                .then(a.2.cmp(&b.2))
        });
        let mut chosen = self.fabric.fresh();
        let mut selected: Vec<Option<DeviceId>> = vec![None; n];
        for (i, slot) in selected.iter_mut().enumerate() {
            if let Placement::Device(d) = self.placements[i] {
                if self.fair_hold[i] && self.down_streaks[i] < self.config.sustain_samples {
                    chosen
                        .admit(d, i as u64, self.apps[i].demand)
                        .expect("a held residency fits an empty fabric");
                    *slot = Some(d);
                }
            }
        }
        for &(_, i, d) in &candidates {
            if selected[i].is_none() && chosen.admit(d, i as u64, self.apps[i].demand).is_ok() {
                selected[i] = Some(d);
            }
        }

        // Weighted-DRF fairness pass: tenants starved past their
        // weighted window claim capacity by clipping over-entitled
        // incumbents (dominant share above weight/Σweights over the
        // contending tenants), most over-weighted-share first. The
        // hand-over is planned on every feasible device and executed
        // where the configured claim policy prefers — min-cost by
        // default: least clipped benefit plus migration debits, so the
        // claimant's entitlement is bought at the smallest energy price.
        // Clipped incumbents fall back to software this interval and
        // re-enter through the ordinary sustain machinery.
        let mut fair_placed = vec![false; n];
        let mut fair_clipped = vec![false; n];
        let mut claimants: Vec<usize> = (0..n)
            .filter(|&i| {
                !self.rejected[i]
                    && selected[i].is_none()
                    && self.starved_streaks[i] >= self.starvation_threshold(i)
            })
            .collect();
        if !claimants.is_empty() {
            // Largest weighted starvation deficit first.
            claimants.sort_by(|&a, &b| {
                let da = self.starved_streaks[a] as f64 * self.apps[a].weight;
                let db = self.starved_streaks[b] as f64 * self.apps[b].weight;
                db.total_cmp(&da).then(a.cmp(&b))
            });
            for &i in &claimants {
                if selected[i].is_some() {
                    continue;
                }
                let mut plans =
                    self.plan_handovers(&chosen, |j| selected[j], |j| fair_placed[j], i, &rates);
                Self::order_plans(&mut plans, self.config.claim_policy);
                // No plan: no feasible device has enough over-entitled
                // capacity — the claim stays pending and the starvation
                // streak keeps accruing.
                if let Some(plan) = plans.first() {
                    for &e in &plan.clips {
                        chosen.release(e as u64);
                        selected[e] = None;
                        fair_clipped[e] = true;
                    }
                    chosen
                        .admit(plan.device, i as u64, self.apps[i].demand)
                        .expect("a planned hand-over fits by construction");
                    selected[i] = Some(plan.device);
                    fair_placed[i] = true;
                }
            }
        }

        // Execute the diff between the chosen assignment and the current
        // one (appending to any DeviceLoss evictions recorded above). A
        // cross-device move is a single decision (the executor tears
        // down one residency and programs the other).
        let want_of = |s: Option<DeviceId>| match s {
            Some(d) => Placement::Device(d),
            None => Placement::Software,
        };
        // Snapshots exist only for reason tagging; most intervals decide
        // nothing and should not pay the two allocations.
        let changed = (0..n).any(|i| want_of(selected[i]) != self.placements[i]);
        let prev_placements = if changed {
            self.placements.clone()
        } else {
            Vec::new()
        };
        let prev_down = if changed {
            self.down_streaks.clone()
        } else {
            Vec::new()
        };
        for i in 0..n {
            let want = want_of(selected[i]);
            if want != self.placements[i] {
                let reason = if fair_placed[i] || fair_clipped[i] {
                    ShiftReason::FairShare
                } else if let (Placement::Device(d), true) = (want, self.starved_streaks[i] > 0) {
                    // A queued tenant entering capacity that freed up on
                    // its own (no incumbent displaced except by its
                    // sustained low-benefit eviction) is the admission
                    // queue draining; displacing a healthy incumbent by
                    // raw score is still a benefit decision.
                    let preempted = (0..n).any(|j| {
                        j != i
                            && prev_placements[j] == Placement::Device(d)
                            && selected[j] != Some(d)
                            && prev_down[j] < self.config.sustain_samples
                    });
                    if preempted {
                        ShiftReason::Benefit
                    } else {
                        ShiftReason::Admission
                    }
                } else {
                    ShiftReason::Benefit
                };
                self.placements[i] = want;
                self.up_streaks[i] = 0;
                self.down_streaks[i] = 0;
                self.starved_streaks[i] = 0;
                self.fair_hold[i] = fair_placed[i];
                self.tenures[i].observe_shift(
                    now,
                    self.config.interval,
                    self.config.tenure.ewma_alpha(),
                );
                let benefit_w = match want {
                    Placement::Device(d) => self.effective_benefit_w(i, d, rates[i]),
                    Placement::Software => raw_values[i],
                };
                self.shifts.push(FleetShift {
                    at: now,
                    app: i,
                    to: want,
                    rate_pps: rates[i],
                    benefit_w,
                    reason,
                });
                decisions.push((i, want));
            }
        }
        self.fabric = chosen;

        // Queue accounting (post-decision): a tenant is queued when it
        // sustains a profitable demand in software but received no
        // capacity this interval.
        for i in 0..n {
            let queued = !self.rejected[i]
                && self.placements[i] == Placement::Software
                && self.up_streaks[i] >= self.config.sustain_samples;
            if queued {
                self.starved_streaks[i] = self.starved_streaks[i].saturating_add(1);
                self.queued_intervals[i] += 1;
            } else {
                self.starved_streaks[i] = 0;
            }
        }
        decisions
    }
}

/// The scheduling surface the fleet harness drives.
///
/// [`run_fleet_controlled`] only needs the sample/apply loop: feed one
/// [`FleetSample`] per app per interval, execute the returned placement
/// changes, and read the admission book-keeping at the end. Both the
/// flat [`FleetController`] and the hierarchical pod arbiter
/// ([`HierarchicalController`]) expose that surface, so the harness —
/// and every rig built on it — is generic over which one arbitrates.
///
/// [`run_fleet_controlled`]: crate::system::run_fleet_controlled
/// [`HierarchicalController`]: crate::arbiter::HierarchicalController
pub trait FleetScheduler {
    /// The sampling interval the harness steps by.
    fn interval(&self) -> Nanos;
    /// Number of scheduled applications (one [`FleetSample`] each).
    fn app_count(&self) -> usize;
    /// Current per-app placements, indexed like the app vector.
    fn placements(&self) -> &[Placement];
    /// Feeds one sample per app; returns the placement changes to
    /// execute.
    fn sample(&mut self, now: Nanos, samples: &[FleetSample]) -> Vec<(usize, Placement)>;
    /// The admission verdict for `app`.
    fn admission_decision(&self, app: usize) -> AdmissionDecision;
    /// Cumulative queued samples per app over the run.
    fn queued_intervals(&self) -> &[u64];
}

impl FleetScheduler for FleetController {
    fn interval(&self) -> Nanos {
        self.config().interval
    }
    fn app_count(&self) -> usize {
        self.apps().len()
    }
    fn placements(&self) -> &[Placement] {
        FleetController::placements(self)
    }
    fn sample(&mut self, now: Nanos, samples: &[FleetSample]) -> Vec<(usize, Placement)> {
        FleetController::sample(self, now, samples)
    }
    fn admission_decision(&self, app: usize) -> AdmissionDecision {
        FleetController::admission_decision(self, app)
    }
    fn queued_intervals(&self) -> &[u64] {
        FleetController::queued_intervals(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inc_hw::{PipelineBudget, TierCost, Topology};
    use inc_power::EnergyParams;

    /// A synthetic analysis with software dynamic slope `slope_w_per_pps`
    /// and a flat hardware curve: benefit(r) ≈ slope * r - unpark_w.
    fn analysis(slope_w_per_kpps: f64, unpark_w: f64) -> PlacementAnalysis {
        PlacementAnalysis {
            software: EnergyParams {
                idle_w: 50.0,
                sleep_w: 0.0,
                active_w: 50.0 + slope_w_per_kpps * 1_000.0,
                peak_rate_pps: 1_000_000.0,
            },
            network: EnergyParams {
                idle_w: 50.0 + unpark_w,
                sleep_w: 0.0,
                active_w: 50.0 + unpark_w + 0.1,
                peak_rate_pps: 10_000_000.0,
            },
        }
    }

    fn app(name: &str, stages: u32, slope: f64, unpark: f64) -> FleetApp {
        app_homed(name, stages, slope, unpark, DeviceId::LOCAL)
    }

    fn app_homed(name: &str, stages: u32, slope: f64, unpark: f64, home: DeviceId) -> FleetApp {
        FleetApp {
            name: name.into(),
            demand: ProgramResources {
                stages,
                sram_bytes: 1 << 20,
                parse_depth_bytes: 64,
            },
            analysis: analysis(slope, unpark),
            home,
            weight: 1.0,
        }
    }

    /// Single device with 12 stages: a 7-stage and a 6-stage app cannot
    /// co-reside.
    fn contended() -> DeviceFabric {
        DeviceFabric::single(PipelineBudget::tofino_like())
    }

    /// Two 12-stage ToRs in one pod with the standard intra-pod cost.
    fn two_tors() -> DeviceFabric {
        DeviceFabric::homogeneous(
            2,
            PipelineBudget::tofino_like(),
            Topology::rack_pairs(
                1,
                TierCost::standard_intra_pod(),
                TierCost::standard_inter_pod(),
            ),
        )
    }

    /// A one-pod pair of ToRs with a custom haircut and no link energy.
    fn haircut_pair(benefit_factor: f64) -> Topology {
        Topology::rack_pairs(
            1,
            TierCost {
                extra_latency: Nanos::from_micros(2),
                benefit_factor,
                link_energy_nj: 0.0,
            },
            TierCost::standard_inter_pod(),
        )
    }

    fn sample(offered: f64, hw_rate: f64) -> FleetSample {
        FleetSample {
            host: HostSample {
                rapl_w: 50.0,
                app_cpu_util: 0.5,
                hw_app_rate: hw_rate,
            },
            offered_pps: offered,
        }
    }

    fn t(s: u64) -> Nanos {
        Nanos::from_secs(s)
    }

    fn cfg() -> FleetControllerConfig {
        FleetControllerConfig::standard(Nanos::from_secs(1))
    }

    #[test]
    fn offloads_higher_score_app_when_only_one_fits() {
        // Both apps profitable and sustained; app 1 has double the
        // benefit per stage.
        let apps = vec![
            app("a", 7, 0.08, 2.0), // at 100 kpps: 6 W over 7 stages
            app("b", 6, 0.14, 2.0), // at 100 kpps: 12 W over 6 stages
        ];
        let mut ctl = FleetController::new(cfg(), contended(), apps);
        // hw_app_rate mirrors the offered rate so the network feedback
        // agrees with the host measurement once an app is resident.
        let s = [sample(100_000.0, 100_000.0), sample(100_000.0, 100_000.0)];
        for step in 1..=2 {
            assert!(ctl.sample(t(step), &s).is_empty(), "sustain not yet met");
        }
        let d = ctl.sample(t(3), &s);
        assert_eq!(d, vec![(1, Placement::HARDWARE)]);
        // App 0 stays software: it no longer fits (7 + 6 > 12 stages).
        assert_eq!(
            ctl.placements(),
            &[Placement::Software, Placement::HARDWARE]
        );
        // And it stays that way while both loads hold (no flapping).
        for step in 4..=20 {
            assert!(ctl.sample(t(step), &s).is_empty());
        }
        assert_eq!(ctl.shifts().len(), 1);
    }

    #[test]
    fn eviction_frees_capacity_for_the_waiting_app() {
        let apps = vec![app("a", 7, 0.08, 2.0), app("b", 6, 0.14, 2.0)];
        let mut ctl = FleetController::new(cfg(), contended(), apps);
        let both_hot = [sample(100_000.0, 100_000.0), sample(100_000.0, 100_000.0)];
        for step in 1..=3 {
            ctl.sample(t(step), &both_hot);
        }
        assert_eq!(
            ctl.placements(),
            &[Placement::Software, Placement::HARDWARE]
        );
        // App b's demand dies; the network-side rate feedback reports the
        // collapse (offered is ignored for the resident app).
        let b_idle = [sample(100_000.0, 100_000.0), sample(100_000.0, 1_000.0)];
        let mut decisions = Vec::new();
        for step in 4..=10 {
            decisions.extend(ctl.sample(t(step), &b_idle));
            if !decisions.is_empty() {
                break;
            }
        }
        // One interval: b evicted after the sustain window AND a admitted
        // in its place.
        assert_eq!(
            ctl.placements(),
            &[Placement::HARDWARE, Placement::Software]
        );
        assert!(decisions.contains(&(1, Placement::Software)));
        assert!(decisions.contains(&(0, Placement::HARDWARE)));
        // Reasons: a displaced b by score while b's collapsed sticky
        // score could no longer defend the slot — a benefit preemption
        // on both sides of the swap, not a fairness or admission event.
        for s in ctl.shifts() {
            assert_eq!(s.reason, ShiftReason::Benefit, "{s:?}");
        }
    }

    #[test]
    fn queued_tenant_entering_freed_capacity_is_tagged_admission() {
        // b: a tiny 1-stage program with strong economics — its sticky
        // score stays above a's even while its delivered benefit sits in
        // the eviction dead band, so a cannot preempt it; a: a
        // full-device 12-stage program that queues behind it.
        let apps = vec![
            app("a", 12, 0.05, 2.0), // 3 W at 100 kpps, score 3
            app("b", 1, 0.50, 2.0),  // 8 W at 20 kpps, score 96
        ];
        let mut ctl = FleetController::new(cfg(), contended(), apps);
        let hot = [sample(100_000.0, 100_000.0), sample(20_000.0, 20_000.0)];
        for step in 1..=3 {
            ctl.sample(t(step), &hot);
        }
        assert_eq!(
            ctl.placements(),
            &[Placement::Software, Placement::HARDWARE]
        );
        assert_eq!(ctl.admission_decision(0), AdmissionDecision::Queue);
        // b's rate decays to 4.8 kpps: delivered benefit 0.4 W — inside
        // the eviction band (< 0.5 W) but its sticky score (0.4 × 12 ×
        // 1.25 = 6) still out-ranks a's 3, so b leaves only when its
        // eviction window completes, and a's entry drains the queue.
        let dip = [sample(100_000.0, 100_000.0), sample(20_000.0, 4_800.0)];
        let mut decisions = Vec::new();
        for step in 4..=10 {
            decisions.extend(ctl.sample(t(step), &dip));
            if !decisions.is_empty() {
                break;
            }
        }
        assert!(decisions.contains(&(1, Placement::Software)));
        assert!(decisions.contains(&(0, Placement::HARDWARE)));
        let a_in = ctl
            .shifts()
            .iter()
            .find(|s| s.app == 0 && s.to.is_offloaded())
            .unwrap();
        assert_eq!(a_in.reason, ShiftReason::Admission);
    }

    #[test]
    fn transient_dip_does_not_evict() {
        let apps = vec![app("a", 7, 0.08, 2.0)];
        let mut ctl = FleetController::new(cfg(), contended(), apps);
        let hot = [sample(100_000.0, 100_000.0)];
        for step in 1..=3 {
            ctl.sample(t(step), &hot);
        }
        assert_eq!(ctl.placements(), &[Placement::HARDWARE]);
        // Two idle samples (below sustain), then hot again: no eviction.
        let idle = [sample(0.0, 0.0)];
        assert!(ctl.sample(t(4), &idle).is_empty());
        assert!(ctl.sample(t(5), &idle).is_empty());
        assert!(ctl.sample(t(6), &hot).is_empty());
        assert!(ctl.sample(t(7), &idle).is_empty());
        assert!(ctl.sample(t(8), &idle).is_empty());
        assert_eq!(ctl.placements(), &[Placement::HARDWARE]);
        // A third consecutive idle sample completes the window.
        let d = ctl.sample(t(9), &idle);
        assert_eq!(d, vec![(0, Placement::Software)]);
    }

    #[test]
    fn marginal_newcomer_does_not_preempt_but_clear_winner_does() {
        let apps = vec![
            app("incumbent", 7, 0.10, 2.0),
            app("rival", 7, 0.10, 2.0), // same program, same economics
        ];
        let mut ctl = FleetController::new(cfg(), contended(), apps);
        let warm = [sample(100_000.0, 100_000.0), sample(0.0, 0.0)];
        for step in 1..=3 {
            ctl.sample(t(step), &warm);
        }
        assert_eq!(ctl.placements()[0], Placement::HARDWARE);
        // The rival reaches a slightly higher rate — within the 25 %
        // stickiness band, so the incumbent holds.
        let marginal = [sample(100_000.0, 100_000.0), sample(110_000.0, 0.0)];
        for step in 4..=12 {
            assert!(ctl.sample(t(step), &marginal).is_empty());
        }
        // The rival's load becomes decisively higher: preemption.
        let decisive = [sample(100_000.0, 100_000.0), sample(400_000.0, 0.0)];
        let mut moved = Vec::new();
        for step in 13..=20 {
            moved.extend(ctl.sample(t(step), &decisive));
            if !moved.is_empty() {
                break;
            }
        }
        assert!(moved.contains(&(0, Placement::Software)));
        assert!(moved.contains(&(1, Placement::HARDWARE)));
    }

    #[test]
    fn unprofitable_apps_never_offload() {
        // Benefit never reaches the floor: slope gives 0.8 W at the
        // offered rate against a 2 W unpark cost.
        let apps = vec![app("cold", 4, 0.008, 2.0)];
        let mut ctl = FleetController::new(cfg(), contended(), apps);
        let s = [sample(100_000.0, 0.0)];
        for step in 1..=50 {
            assert!(ctl.sample(t(step), &s).is_empty());
        }
        assert_eq!(ctl.placements(), &[Placement::Software]);
    }

    #[test]
    fn pinned_configuration_never_moves() {
        let apps = vec![app("a", 7, 0.10, 2.0), app("b", 6, 0.14, 2.0)];
        let pinned = FleetControllerConfig {
            sustain_samples: u32::MAX,
            ..cfg()
        };
        let mut ctl = FleetController::new(pinned, contended(), apps)
            .with_initial_placements(&[Placement::HARDWARE, Placement::Software]);
        assert!(ctl.fabric().is_resident(0));
        for step in 1..=30 {
            // Wildly varying load in both directions.
            let r = if step % 2 == 0 { 500_000.0 } else { 0.0 };
            assert!(ctl
                .sample(t(step), &[sample(r, r), sample(r, r)])
                .is_empty());
        }
        assert_eq!(
            ctl.placements(),
            &[Placement::HARDWARE, Placement::Software]
        );
        assert!(ctl.shifts().is_empty());
    }

    #[test]
    #[should_panic(expected = "must fit")]
    fn infeasible_initial_placements_rejected() {
        let apps = vec![app("a", 7, 0.1, 2.0), app("b", 6, 0.1, 2.0)];
        let _ = FleetController::new(cfg(), contended(), apps)
            .with_initial_placements(&[Placement::HARDWARE, Placement::HARDWARE]);
    }

    #[test]
    #[should_panic(expected = "homed")]
    fn out_of_fabric_home_rejected() {
        let apps = vec![app_homed("lost", 4, 0.1, 2.0, DeviceId(3))];
        let _ = FleetController::new(cfg(), contended(), apps);
    }

    // --- Fabric-specific behaviour. ---

    #[test]
    fn oversubscribed_home_spills_to_the_remote_tor() {
        // Two apps homed on ToR 0, together too big for one device; the
        // second-best spills to ToR 1 because its penalty-adjusted
        // benefit still clears the floor.
        let apps = vec![
            app_homed("big", 7, 0.14, 2.0, DeviceId(0)),
            app_homed("spill", 6, 0.10, 2.0, DeviceId(0)),
        ];
        let mut ctl = FleetController::new(cfg(), two_tors(), apps);
        let s = [sample(100_000.0, 100_000.0), sample(100_000.0, 100_000.0)];
        for step in 1..=3 {
            ctl.sample(t(step), &s);
        }
        assert_eq!(
            ctl.placements(),
            &[
                Placement::Device(DeviceId(0)),
                Placement::Device(DeviceId(1))
            ]
        );
        // The spilled app's recorded benefit carries the haircut.
        let spill = ctl.shifts().iter().find(|s| s.app == 1).unwrap();
        let raw = ctl.benefit_w(1, 100_000.0);
        let haircut = TierCost::standard_intra_pod().benefit_factor;
        assert!((spill.benefit_w - raw * haircut).abs() < 1e-9);
        // Stable thereafter: no ping-pong between the ToRs.
        for step in 4..=30 {
            assert!(ctl.sample(t(step), &s).is_empty());
        }
    }

    #[test]
    fn remote_placement_requires_the_haircut_benefit_to_clear_the_floor() {
        // Raw benefit 1.1 W clears the 1 W floor at home, but the 0.85×
        // haircut (0.935 W) does not — so when home is full the app stays
        // in software rather than spilling at a loss.
        let apps = vec![
            app_homed("hog", 12, 0.14, 2.0, DeviceId(0)), // fills ToR 0
            app_homed("meek", 6, 0.031, 2.0, DeviceId(0)), // 3.1-2 = 1.1 W
        ];
        let mut ctl = FleetController::new(cfg(), two_tors(), apps);
        let s = [sample(100_000.0, 100_000.0), sample(100_000.0, 100_000.0)];
        for step in 1..=10 {
            ctl.sample(t(step), &s);
        }
        assert_eq!(ctl.placements()[0], Placement::Device(DeviceId(0)));
        assert_eq!(ctl.placements()[1], Placement::Software);
    }

    #[test]
    fn app_returns_home_when_capacity_frees_only_if_decisively_better() {
        // The spilled app sits on ToR 1. When the hog on its home ToR
        // leaves, the app comes home only if its un-haircut home score
        // beats its sticky remote score — use a deep 0.5 haircut so
        // home is decisively (2× > 1.25×) better.
        let fabric = DeviceFabric::homogeneous(2, PipelineBudget::tofino_like(), haircut_pair(0.5));
        let apps = vec![
            app_homed("hog", 7, 0.30, 2.0, DeviceId(0)),
            app_homed("mover", 6, 0.10, 2.0, DeviceId(0)),
        ];
        let mut ctl = FleetController::new(cfg(), fabric, apps);
        let both = [sample(100_000.0, 100_000.0), sample(100_000.0, 100_000.0)];
        for step in 1..=3 {
            ctl.sample(t(step), &both);
        }
        assert_eq!(
            ctl.placements(),
            &[
                Placement::Device(DeviceId(0)),
                Placement::Device(DeviceId(1))
            ]
        );
        // The hog's traffic dies; after its eviction window the mover
        // comes home in the same decision pass.
        let hog_idle = [sample(100_000.0, 500.0), sample(100_000.0, 100_000.0)];
        let mut moved = Vec::new();
        for step in 4..=10 {
            moved.extend(ctl.sample(t(step), &hog_idle));
            if !moved.is_empty() {
                break;
            }
        }
        assert!(moved.contains(&(0, Placement::Software)), "{moved:?}");
        assert!(
            moved.contains(&(1, Placement::Device(DeviceId(0)))),
            "{moved:?}"
        );
        // One decision for the move, not an evict+offload pair.
        assert_eq!(
            ctl.shifts().iter().filter(|s| s.app == 1).count(),
            2,
            "{:?}",
            ctl.shifts()
        );
    }

    // --- Fair sharing and admission control. ---

    /// `app` with an explicit fair-share weight.
    fn weighted(name: &str, stages: u32, slope: f64, weight: f64) -> FleetApp {
        FleetApp {
            weight,
            ..app(name, stages, slope, 2.0)
        }
    }

    /// Both tenants hot forever; the device fits only one. Under pure
    /// benefit the higher-score tenant holds it indefinitely.
    fn contended_pair(weight_hog: f64, weight_meek: f64) -> Vec<FleetApp> {
        vec![
            // 7 stages, benefit 12 W at 100 kpps: the clear score winner.
            weighted("hog", 7, 0.14, weight_hog),
            // 7 stages, benefit 3 W at 100 kpps: profitable but outscored.
            weighted("meek", 7, 0.05, weight_meek),
        ]
    }

    fn fair_cfg(starvation_window: u32) -> FleetControllerConfig {
        FleetControllerConfig {
            starvation_window,
            ..cfg()
        }
    }

    #[test]
    fn pure_benefit_starves_the_outscored_tenant() {
        let mut ctl = FleetController::new(
            fair_cfg(u32::MAX), // fairness disabled
            contended(),
            contended_pair(1.0, 1.0),
        );
        let s = [sample(100_000.0, 100_000.0), sample(100_000.0, 100_000.0)];
        for step in 1..=60 {
            ctl.sample(t(step), &s);
        }
        // The meek tenant never got the device — and the controller knows
        // it is queued, not merely idle.
        assert_eq!(
            ctl.placements(),
            &[Placement::HARDWARE, Placement::Software]
        );
        assert_eq!(ctl.admission_decision(1), AdmissionDecision::Queue);
        assert!(ctl.queued_intervals()[1] > 50);
        assert_eq!(ctl.shifts().len(), 1);
    }

    #[test]
    fn starved_tenant_claims_its_fair_share_and_the_device_alternates() {
        let window = 6;
        let mut ctl = FleetController::new(fair_cfg(window), contended(), contended_pair(1.0, 1.0));
        let s = [sample(100_000.0, 100_000.0), sample(100_000.0, 100_000.0)];
        let mut resident = [0u32; 2];
        for step in 1..=100 {
            ctl.sample(t(step), &s);
            for (i, r) in resident.iter_mut().enumerate() {
                if ctl.placements()[i].is_offloaded() {
                    *r += 1;
                }
            }
        }
        // Both tenants got a material share of device time (equal weights
        // converge toward an even time split; the sustain preamble skews
        // slightly toward whoever holds at claim time).
        assert!(resident[0] > 30, "hog held {} of 100", resident[0]);
        assert!(resident[1] > 30, "meek held {} of 100", resident[1]);
        // The first shift is the benefit offload; every hand-over after it
        // is a fairness decision (claim + clip pairs), and consecutive
        // entries of the same tenant are separated by at least the
        // starvation window — deliberate hand-over, not flapping.
        assert_eq!(ctl.shifts()[0].reason, ShiftReason::Benefit);
        assert!(ctl
            .shifts()
            .iter()
            .skip(1)
            .all(|s| s.reason == ShiftReason::FairShare));
        for app in 0..2 {
            let entries: Vec<Nanos> = ctl
                .shifts()
                .iter()
                .filter(|s| s.app == app && s.to.is_offloaded())
                .map(|s| s.at)
                .collect();
            for pair in entries.windows(2) {
                assert!(
                    pair[1] - pair[0] >= Nanos::from_secs(u64::from(window)),
                    "app {app} re-entered after {} < window",
                    pair[1] - pair[0]
                );
            }
        }
        // The dominant-share accounting the claims were priced with.
        let held = ctl.placements().iter().position(|p| p.is_offloaded());
        let held = held.expect("someone holds the device");
        assert!((ctl.dominant_share(held) - 7.0 / 12.0).abs() < 1e-9);
        assert_eq!(ctl.dominant_share(1 - held), 0.0);
    }

    #[test]
    fn device_time_divides_by_weight() {
        // The hog is entitled to 2/3: its 9-stage program (share 0.75)
        // exceeds that, so it stays clippable; the meek tenant's 7-stage
        // program (share 0.583) exceeds its 1/3 likewise. The weighted
        // starvation windows (20/2 = 10 vs 20/1 = 20) make the hog
        // reclaim twice as fast, so its device-time share converges
        // toward its entitlement.
        let apps = vec![
            weighted("hog", 9, 0.14, 2.0),
            weighted("meek", 7, 0.05, 1.0),
        ];
        let mut ctl = FleetController::new(fair_cfg(20), contended(), apps);
        assert_eq!(ctl.starvation_threshold(0), 10);
        assert_eq!(ctl.starvation_threshold(1), 20);
        let s = [sample(100_000.0, 100_000.0), sample(100_000.0, 100_000.0)];
        let mut resident = [0u32; 2];
        for step in 1..=400 {
            ctl.sample(t(step), &s);
            for (i, r) in resident.iter_mut().enumerate() {
                if ctl.placements()[i].is_offloaded() {
                    *r += 1;
                }
            }
        }
        assert!(resident[1] > 50, "meek starved: {resident:?}");
        let ratio = f64::from(resident[0]) / f64::from(resident[1]);
        assert!(
            (1.4..=2.2).contains(&ratio),
            "weighted split off: {resident:?} (ratio {ratio:.2})"
        );
        // While contended, both tenants' entitlements reflect the weights.
        assert!((ctl.entitlement(0) - 2.0 / 3.0).abs() < 1e-9);
        assert!((ctl.entitlement(1) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn incumbent_within_its_entitlement_is_not_clipped() {
        // The incumbent's 6-stage program is exactly half the device —
        // not *above* its 1/2 entitlement — so a starved rival may not
        // clip it: fairness protects entitlements, it does not create
        // capacity that is not there.
        let apps = vec![
            weighted("within", 6, 0.14, 1.0),
            weighted("wanting", 7, 0.05, 1.0),
        ];
        let mut ctl = FleetController::new(fair_cfg(5), contended(), apps);
        let s = [sample(100_000.0, 100_000.0), sample(100_000.0, 100_000.0)];
        for step in 1..=60 {
            ctl.sample(t(step), &s);
        }
        assert_eq!(
            ctl.placements(),
            &[Placement::HARDWARE, Placement::Software]
        );
        assert_eq!(ctl.shifts().len(), 1);
        // The rival stays queued — visible back-pressure, no thrash.
        assert_eq!(ctl.admission_decision(1), AdmissionDecision::Queue);
        assert!(ctl.starved_streak(1) > 20);
    }

    #[test]
    fn unfit_demand_is_rejected_up_front_not_thrashed() {
        // 14 stages fit no 12-stage device; the tenant is hot forever but
        // never becomes a candidate, never queues, never shifts.
        let apps = vec![app("fits", 6, 0.10, 2.0), app("giant", 14, 0.30, 2.0)];
        let mut ctl = FleetController::new(cfg(), two_tors(), apps);
        assert_eq!(ctl.admission_decision(1), AdmissionDecision::Reject);
        let s = [sample(100_000.0, 100_000.0), sample(400_000.0, 400_000.0)];
        for step in 1..=50 {
            ctl.sample(t(step), &s);
        }
        assert_eq!(ctl.placements()[1], Placement::Software);
        assert!(ctl.shifts().iter().all(|s| s.app != 1));
        assert_eq!(ctl.queued_intervals()[1], 0);
        assert_eq!(ctl.admission_decision(1), AdmissionDecision::Reject);
        // The satisfiable tenant is unaffected.
        assert_eq!(ctl.placements()[0], Placement::Device(DeviceId(0)));
        assert_eq!(ctl.admission_decision(0), AdmissionDecision::Admit);
    }

    #[test]
    #[should_panic(expected = "non-positive weight")]
    fn non_positive_weights_rejected() {
        let apps = vec![weighted("w", 4, 0.1, 0.0)];
        let _ = FleetController::new(cfg(), contended(), apps);
    }

    #[test]
    fn sticky_incumbent_device_resists_marginal_cross_tor_moves() {
        // Symmetric fabric, app homed on ToR 0 but resident on ToR 1
        // (seeded). Its home score is 1/0.9 ≈ 1.11× the remote score —
        // inside the 1.25× stickiness band — so it must NOT hop home.
        let fabric = DeviceFabric::homogeneous(2, PipelineBudget::tofino_like(), haircut_pair(0.9));
        let apps = vec![app_homed("settled", 6, 0.10, 2.0, DeviceId(0))];
        let mut ctl = FleetController::new(cfg(), fabric, apps)
            .with_initial_placements(&[Placement::Device(DeviceId(1))]);
        let s = [sample(100_000.0, 100_000.0)];
        for step in 1..=30 {
            assert!(ctl.sample(t(step), &s).is_empty(), "hopped at {step}");
        }
        assert_eq!(ctl.placements(), &[Placement::Device(DeviceId(1))]);
    }

    // --- Migration cost. ---

    /// The hop-home scenario of
    /// `app_returns_home_when_capacity_frees_only_if_decisively_better`,
    /// replayed: the mover sits on the remote ToR of a deep-haircut
    /// (0.7) pair, so its home score is 1/0.7 ≈ 1.43× its sticky remote
    /// score — beyond the 1.25× stickiness band, so a migration-blind
    /// scorer hops home the moment the hog leaves. With the switchover
    /// debit priced in, the ~1.2 W/interval the hop would gain is less
    /// than the amortised reprogramming cost, and the app stays put.
    #[test]
    fn migration_cost_suppresses_marginal_hop_that_stickiness_allows() {
        let setup = |migration_cost_j: f64| {
            let fabric =
                DeviceFabric::homogeneous(2, PipelineBudget::tofino_like(), haircut_pair(0.7));
            let apps = vec![
                app_homed("hog", 7, 0.30, 2.0, DeviceId(0)),
                app_homed("mover", 6, 0.06, 2.0, DeviceId(0)),
            ];
            let config = FleetControllerConfig {
                migration_cost_j,
                ..cfg()
            };
            FleetController::new(config, fabric, apps)
        };
        // Mover at 100 kpps: raw benefit 4 W, remote 2.8 W. Home score
        // 4/0.5 = 8 vs sticky remote 2.8/0.5 × 1.25 = 7. The hop gains
        // 1.2 W; the standard 5 J debit over a 20 × 1 s tenure is only
        // 0.25 W — too small — so use a 2 s interval... instead pin the
        // economics explicitly: a 30 J switchover amortises to 1.5 W,
        // which outweighs the 1.2 W the hop would deliver.
        let drive = |ctl: &mut FleetController| {
            let both = [sample(100_000.0, 100_000.0), sample(100_000.0, 100_000.0)];
            for step in 1..=3 {
                ctl.sample(t(step), &both);
            }
            assert_eq!(
                ctl.placements(),
                &[
                    Placement::Device(DeviceId(0)),
                    Placement::Device(DeviceId(1))
                ]
            );
            // The hog dies; run past its eviction window and beyond.
            let hog_idle = [sample(100_000.0, 500.0), sample(100_000.0, 100_000.0)];
            for step in 4..=30 {
                ctl.sample(t(step), &hog_idle);
            }
        };

        // Migration-blind scorer: the mover hops home.
        let mut blind = setup(0.0);
        drive(&mut blind);
        assert_eq!(blind.placements()[1], Placement::Device(DeviceId(0)));

        // With the debit: the same marginal hop is suppressed.
        let mut priced = setup(30.0);
        assert!((priced.migration_w() - 1.5).abs() < 1e-9);
        drive(&mut priced);
        assert_eq!(
            priced.placements()[1],
            Placement::Device(DeviceId(1)),
            "a 1.2 W hop should not outbid a 1.5 W amortised switchover"
        );
        // ...and the suppression is a score effect, not a freeze: a
        // decisively better home still wins. At 400 kpps the raw benefit
        // is 22 W, so the debited home score (22 − 1.5)/0.5 = 41 clears
        // the sticky remote score 1.25 × 0.7 × 22 / 0.5 = 38.5.
        let surge = [sample(100_000.0, 500.0), sample(400_000.0, 400_000.0)];
        for step in 31..=40 {
            priced.sample(t(step), &surge);
        }
        assert_eq!(priced.placements()[1], Placement::Device(DeviceId(0)));
    }

    /// A fresh offload from software pays no migration debit (nothing is
    /// torn down), and pinned controllers are unaffected by the pricing.
    #[test]
    fn fresh_offloads_are_not_debited() {
        let config = FleetControllerConfig {
            migration_cost_j: 1_000.0, // absurd: 50 W amortised
            ..cfg()
        };
        let apps = vec![app("a", 7, 0.08, 2.0)];
        let mut ctl = FleetController::new(config, contended(), apps);
        let s = [sample(100_000.0, 100_000.0)];
        for step in 1..=3 {
            ctl.sample(t(step), &s);
        }
        assert_eq!(ctl.placements(), &[Placement::HARDWARE]);
    }

    // --- Claim policies. ---

    /// Three tenants on a rack pair: the claimant's own score prefers its
    /// home ToR 0 (no haircut), where the expensive incumbent sits; the
    /// cheap incumbent sits on ToR 1. Best-score claims clip the
    /// expensive program; min-cost claims clip the cheap one.
    fn claim_scenario(policy: ClaimPolicy) -> (FleetController, [FleetSample; 3]) {
        let fabric = DeviceFabric::homogeneous(
            2,
            PipelineBudget::tofino_like(),
            Topology::rack_pairs(
                1,
                TierCost::standard_intra_pod(),
                TierCost::standard_inter_pod(),
            ),
        );
        // Scores at 100 kpps: rich 20.6 on its home ToR 0, poor 5.1 on
        // its home ToR 1; the claimant scores 4.3 at home and 3.6 remote
        // — profitable everywhere, outscored everywhere, so the knapsack
        // never places it and it must go through the claim protocol.
        let apps = vec![
            app_homed("rich", 7, 0.14, 2.0, DeviceId(0)), // 12 W at 100 kpps
            app_homed("poor", 7, 0.05, 2.0, DeviceId(1)), // 3 W at 100 kpps
            app_homed("claimant", 7, 0.045, 2.0, DeviceId(0)), // 2.5 W at 100 kpps
        ];
        let config = FleetControllerConfig {
            starvation_window: 6,
            claim_policy: policy,
            ..cfg()
        };
        let ctl = FleetController::new(config, fabric, apps);
        let s = [
            sample(100_000.0, 100_000.0),
            sample(100_000.0, 100_000.0),
            sample(100_000.0, 100_000.0),
        ];
        (ctl, s)
    }

    #[test]
    fn min_cost_claim_clips_the_cheap_incumbent_not_the_best_scoring_device() {
        for (policy, expect_clip, expect_device) in [
            // Old policy: claim lands on the claimant's highest-scoring
            // device — home, un-haircut — clipping the 12 W incumbent.
            (ClaimPolicy::BestScore, 0usize, DeviceId(0)),
            // Min-cost: hand-over happens where the forfeited benefit is
            // smallest — the remote ToR's 3 W incumbent.
            (ClaimPolicy::MinCost, 1usize, DeviceId(1)),
        ] {
            let (mut ctl, s) = claim_scenario(policy);
            let mut first_claim = None;
            for step in 1..=30 {
                let decisions = ctl.sample(t(step), &s);
                if first_claim.is_none() {
                    first_claim = decisions
                        .iter()
                        .find(|&&(app, to)| app == 2 && to.is_offloaded())
                        .map(|&(_, to)| to);
                }
            }
            assert_eq!(
                first_claim,
                Some(Placement::Device(expect_device)),
                "{policy:?} claimed the wrong device"
            );
            let clip = ctl
                .shifts()
                .iter()
                .find(|sh| sh.to == Placement::Software && sh.reason == ShiftReason::FairShare)
                .expect("a clip was recorded");
            assert_eq!(clip.app, expect_clip, "{policy:?} clipped the wrong app");
        }
    }

    #[test]
    fn claim_plans_report_clip_economics() {
        let (mut ctl, s) = claim_scenario(ClaimPolicy::MinCost);
        // Settle the two incumbents (claimant queues behind them).
        for step in 1..=5 {
            ctl.sample(t(step), &s);
        }
        assert_eq!(ctl.placements()[2], Placement::Software);
        let rates = [100_000.0; 3];
        let plans = ctl.claim_plans(2, &rates);
        assert_eq!(plans.len(), 2, "{plans:?}");
        let by_dev = |d: DeviceId| plans.iter().find(|p| p.device == d).unwrap();
        let home = by_dev(DeviceId(0));
        let remote = by_dev(DeviceId(1));
        // Home clips the rich incumbent (12 W); the remote hand-over
        // clips the poor one, forfeiting its full un-haircut 3 W (it is
        // at home on ToR 1).
        assert_eq!(home.clips, vec![0]);
        let rich_delivered = ctl.effective_benefit_w(0, DeviceId(0), rates[0]);
        assert!((home.clipped_benefit_w - rich_delivered).abs() < 1e-9);
        assert!((rich_delivered - 12.0).abs() < 0.01);
        assert_eq!(remote.clips, vec![1]);
        let poor_delivered = ctl.effective_benefit_w(1, DeviceId(1), rates[1]);
        assert!((remote.clipped_benefit_w - poor_delivered).abs() < 1e-9);
        assert!((poor_delivered - 3.0).abs() < 0.01);
        // Both hand-overs move two programs (clip + claimant).
        assert!((home.migration_w - 2.0 * ctl.migration_w()).abs() < 1e-12);
        // The claimant's own score prefers home; the total cost prefers
        // the remote hand-over.
        assert!(home.score > remote.score);
        assert!(remote.total_cost_w() < home.total_cost_w());
    }
}
