//! The host-controlled on-demand controller (§9.1).
//!
//! The second controller design "makes offloading decisions at the host,
//! using information such as the CPU usage and power consumption" read
//! from RAPL, shifting to the network when a power threshold and a CPU
//! usage condition hold together, sustained over a window ("avoiding harsh
//! decisions based on spikes and outliers"). Shifting back requires
//! feedback from the network — the packet rate the hardware is serving —
//! "otherwise, the shift may be inefficient, or cause a workload to bounce
//! back and forth".
//!
//! The paper's implementation is 204 lines of C consuming ~0.3 % of a
//! core for RAPL reads; this is the same state machine as a pure Rust
//! struct fed by periodic samples.

use inc_hw::Placement;
use inc_sim::Nanos;

/// One controller sample, taken every [`HostControllerConfig::interval`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HostSample {
    /// Host package power from RAPL, watts.
    pub rapl_w: f64,
    /// CPU utilisation attributable to the application, core-seconds/s.
    pub app_cpu_util: f64,
    /// Application packet rate measured *by the network device*
    /// (the shift-back feedback), packets/second.
    pub hw_app_rate: f64,
}

/// Configuration of the host-controlled design.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HostControllerConfig {
    /// Sampling interval.
    pub interval: Nanos,
    /// Shift to the network when RAPL power exceeds this...
    pub power_up_w: f64,
    /// ...and the application's CPU usage exceeds this (power alone is
    /// ambiguous: "a high power consumption can be triggered by multiple
    /// applications running on the same host").
    pub cpu_up_util: f64,
    /// Shift back when the network-measured app rate falls below this...
    pub rate_down_pps: f64,
    /// ...and host power is below this (the host has headroom again —
    /// Figure 6 shifts back "as ChainerMN stops").
    pub power_down_w: f64,
    /// Consecutive samples a condition must hold (Figure 6 uses three
    /// seconds of sustained high load).
    pub sustain_samples: u32,
}

impl HostControllerConfig {
    /// The Figure 6 configuration: 1 s samples, 3 s sustain, shift-back
    /// headroom threshold a little under the shift-up threshold.
    pub fn figure6(power_up_w: f64, cpu_up_util: f64, rate_down_pps: f64) -> Self {
        HostControllerConfig {
            interval: Nanos::from_secs(1),
            power_up_w,
            cpu_up_util,
            rate_down_pps,
            power_down_w: power_up_w * 0.9,
            sustain_samples: 3,
        }
    }
}

/// A record of one placement decision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Shift {
    /// When the decision fired.
    pub at: Nanos,
    /// The new placement.
    pub to: Placement,
    /// The sample that completed the sustained condition.
    pub trigger: HostSample,
}

/// The host-controlled on-demand controller.
///
/// # Examples
///
/// ```
/// use inc_hw::Placement;
/// use inc_ondemand::{HostController, HostControllerConfig, HostSample};
/// use inc_sim::Nanos;
///
/// let cfg = HostControllerConfig::figure6(55.0, 0.2, 10_000.0);
/// let mut ctl = HostController::new(cfg);
/// assert_eq!(ctl.placement(), Placement::Software);
/// ```
#[derive(Clone, Debug)]
pub struct HostController {
    config: HostControllerConfig,
    placement: Placement,
    up_streak: u32,
    down_streak: u32,
    shifts: Vec<Shift>,
}

impl HostController {
    /// Creates a controller starting in software placement.
    pub fn new(config: HostControllerConfig) -> Self {
        HostController {
            config,
            placement: Placement::Software,
            up_streak: 0,
            down_streak: 0,
            shifts: Vec::new(),
        }
    }

    /// Returns the current placement decision.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Returns the configuration.
    pub fn config(&self) -> HostControllerConfig {
        self.config
    }

    /// Returns the decision log.
    pub fn shifts(&self) -> &[Shift] {
        &self.shifts
    }

    /// Feeds one sample; returns a new placement when a sustained
    /// condition completes.
    pub fn sample(&mut self, now: Nanos, s: HostSample) -> Option<Placement> {
        match self.placement {
            Placement::Software => {
                self.down_streak = 0;
                let hot =
                    s.rapl_w >= self.config.power_up_w && s.app_cpu_util >= self.config.cpu_up_util;
                if hot {
                    self.up_streak += 1;
                } else {
                    self.up_streak = 0;
                }
                if self.up_streak >= self.config.sustain_samples {
                    self.transition(now, Placement::HARDWARE, s);
                    return Some(Placement::HARDWARE);
                }
            }
            Placement::Device(_) => {
                self.up_streak = 0;
                // Shift-back needs the network-side rate feedback (host
                // power is no longer attributable to the app) plus host
                // headroom, so a busy co-tenant blocks the return.
                let cold = s.hw_app_rate < self.config.rate_down_pps
                    && s.rapl_w < self.config.power_down_w;
                if cold {
                    self.down_streak += 1;
                } else {
                    self.down_streak = 0;
                }
                if self.down_streak >= self.config.sustain_samples {
                    self.transition(now, Placement::Software, s);
                    return Some(Placement::Software);
                }
            }
        }
        None
    }

    fn transition(&mut self, now: Nanos, to: Placement, trigger: HostSample) {
        self.placement = to;
        self.up_streak = 0;
        self.down_streak = 0;
        self.shifts.push(Shift {
            at: now,
            to,
            trigger,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HostControllerConfig {
        HostControllerConfig::figure6(55.0, 0.2, 10_000.0)
    }

    fn hot() -> HostSample {
        HostSample {
            rapl_w: 70.0,
            app_cpu_util: 0.5,
            hw_app_rate: 0.0,
        }
    }

    fn cold() -> HostSample {
        HostSample {
            rapl_w: 40.0,
            app_cpu_util: 0.05,
            hw_app_rate: 2_000.0,
        }
    }

    fn t(s: u64) -> Nanos {
        Nanos::from_secs(s)
    }

    #[test]
    fn requires_sustained_condition() {
        let mut c = HostController::new(cfg());
        assert_eq!(c.sample(t(1), hot()), None);
        assert_eq!(c.sample(t(2), hot()), None);
        // A dip resets the streak ("avoiding harsh decisions based on
        // spikes").
        assert_eq!(c.sample(t(3), cold()), None);
        assert_eq!(c.sample(t(4), hot()), None);
        assert_eq!(c.sample(t(5), hot()), None);
        assert_eq!(c.sample(t(6), hot()), Some(Placement::HARDWARE));
        assert_eq!(c.shifts().len(), 1);
        assert_eq!(c.shifts()[0].at, t(6));
    }

    #[test]
    fn power_alone_is_not_enough() {
        // High power but low app CPU (another tenant is hot): no shift.
        let mut c = HostController::new(cfg());
        let ambiguous = HostSample {
            rapl_w: 90.0,
            app_cpu_util: 0.01,
            hw_app_rate: 0.0,
        };
        for s in 1..=10 {
            assert_eq!(c.sample(t(s), ambiguous), None);
        }
        assert_eq!(c.placement(), Placement::Software);
    }

    #[test]
    fn shift_back_uses_network_feedback() {
        let mut c = HostController::new(cfg());
        for s in 1..=3 {
            c.sample(t(s), hot());
        }
        assert_eq!(c.placement(), Placement::HARDWARE);
        // Hardware still busy: no shift back even if host power is low.
        let busy = HostSample {
            rapl_w: 30.0,
            app_cpu_util: 0.0,
            hw_app_rate: 500_000.0,
        };
        for s in 4..=10 {
            assert_eq!(c.sample(t(s), busy), None);
        }
        // Demand dies down: sustained low rate shifts back.
        let idle = HostSample {
            rapl_w: 30.0,
            app_cpu_util: 0.0,
            hw_app_rate: 1_000.0,
        };
        assert_eq!(c.sample(t(11), idle), None);
        assert_eq!(c.sample(t(12), idle), None);
        assert_eq!(c.sample(t(13), idle), Some(Placement::Software));
        assert_eq!(c.shifts().len(), 2);
    }

    #[test]
    fn no_bouncing_within_band() {
        let mut c = HostController::new(cfg());
        for s in 1..=3 {
            c.sample(t(s), hot());
        }
        // A moderate rate above the down-threshold holds hardware
        // placement indefinitely.
        let moderate = HostSample {
            rapl_w: 45.0,
            app_cpu_util: 0.0,
            hw_app_rate: 50_000.0,
        };
        for s in 4..=50 {
            assert_eq!(c.sample(t(s), moderate), None);
        }
        assert_eq!(c.placement(), Placement::HARDWARE);
        assert_eq!(c.shifts().len(), 1);
    }
}
