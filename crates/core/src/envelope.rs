//! The on-demand power envelope (Figure 5).
//!
//! With on-demand shifting, "at low utilization power consumption is
//! derived from the properties of the software-based system. As
//! utilization increases, processing is shifted to the network, and the
//! power consumption changes little with utilization." This module builds
//! that composite curve from a software deployment, a hardware deployment,
//! and the parked-card cost, and computes the §9 headline saving (up to
//! ~50 % versus software-only at high load).

use inc_hw::Placement;

use crate::apps::Deployment;

/// One point of the on-demand curve.
#[derive(Clone, Copy, Debug)]
pub struct EnvelopePoint {
    /// Offered rate, packets/second.
    pub rate_pps: f64,
    /// Total system power with on-demand placement, watts.
    pub on_demand_w: f64,
    /// Total power if pinned to software, watts.
    pub software_w: f64,
    /// Total power if pinned to hardware, watts.
    pub hardware_w: f64,
    /// The placement the on-demand system uses at this rate.
    pub placement: Placement,
}

/// Builder of Figure 5 curves.
#[derive(Clone, Debug)]
pub struct OnDemandEnvelope {
    /// The software deployment (its NIC replaced by the parked card).
    pub software: Deployment,
    /// The hardware deployment (card active inside the host).
    pub hardware: Deployment,
    /// Power of the parked card that replaces the NIC in software
    /// placement (§9.2: ≈ reference NIC + 5 W for LaKe).
    pub parked_card_w: f64,
    /// NIC power included in the software deployment's curve, to be
    /// replaced by the parked card.
    pub software_nic_w: f64,
}

impl OnDemandEnvelope {
    /// Power in software placement: software system with the parked card
    /// standing in for its NIC.
    pub fn software_placement_w(&self, rate: f64) -> f64 {
        self.software.power_w(rate) - self.software_nic_w + self.parked_card_w
    }

    /// Power in hardware placement: the in-host hardware deployment (the
    /// host idles; misses are negligible after warm-up, as Figure 5
    /// assumes: "this graph is indicative of a case where all queries are
    /// (after warm up) hit").
    pub fn hardware_placement_w(&self, rate: f64) -> f64 {
        self.hardware.power_w(rate)
    }

    /// The rate above which hardware placement is the cheaper choice.
    pub fn shift_rate(&self) -> f64 {
        inc_power::crossover_fn(
            |r| self.software_placement_w(r),
            |r| self.hardware_placement_w(r),
            0.0,
            self.software.peak_pps,
        )
        .unwrap_or(self.software.peak_pps)
    }

    /// Samples the envelope at `points` rates up to `max_rate`.
    pub fn sample(&self, max_rate: f64, points: usize) -> Vec<EnvelopePoint> {
        let shift = self.shift_rate();
        (0..=points)
            .map(|i| {
                let rate = max_rate * i as f64 / points as f64;
                let sw = self.software_placement_w(rate);
                let hw = self.hardware_placement_w(rate);
                let (placement, on_demand_w) = if rate >= shift {
                    (Placement::HARDWARE, hw)
                } else {
                    (Placement::Software, sw)
                };
                EnvelopePoint {
                    rate_pps: rate,
                    on_demand_w,
                    // The dashed Figure 5 baseline is the software system
                    // with its own NIC (no card at all).
                    software_w: self.software.power_w(rate),
                    hardware_w: hw,
                    placement,
                }
            })
            .collect()
    }

    /// The §9 headline: the saving of on-demand versus always-hardware at
    /// idle, as a fraction of the hardware power.
    pub fn idle_saving_fraction(&self) -> f64 {
        let od = self.software_placement_w(0.0);
        let hw = self.hardware_placement_w(0.0);
        (hw - od) / hw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::kvs_models;
    use inc_power::calib;

    fn kvs_envelope() -> OnDemandEnvelope {
        let models = kvs_models();
        OnDemandEnvelope {
            software: models[0].clone(),
            hardware: models[1].clone(),
            parked_card_w: calib::NETFPGA_REFERENCE_NIC_W + calib::LAKE_PARKED_GAP_W,
            software_nic_w: calib::MELLANOX_NIC_W,
        }
    }

    #[test]
    fn low_rate_uses_software_high_rate_uses_hardware() {
        let env = kvs_envelope();
        let pts = env.sample(1_200_000.0, 60);
        assert_eq!(pts.first().unwrap().placement, Placement::Software);
        assert_eq!(pts.last().unwrap().placement, Placement::HARDWARE);
        // The placement flips exactly once along the sweep.
        let flips = pts
            .windows(2)
            .filter(|w| w[0].placement != w[1].placement)
            .count();
        assert_eq!(flips, 1);
    }

    #[test]
    fn on_demand_tracks_the_cheaper_placement() {
        let env = kvs_envelope();
        for p in env.sample(1_200_000.0, 120) {
            let best = env
                .software_placement_w(p.rate_pps)
                .min(env.hardware_placement_w(p.rate_pps));
            assert!(
                (p.on_demand_w - best).abs() < 1e-6,
                "at {} pps: od {} vs best {best}",
                p.rate_pps,
                p.on_demand_w
            );
        }
    }

    #[test]
    fn saves_power_at_idle_versus_always_on_hardware() {
        let env = kvs_envelope();
        let saving = env.idle_saving_fraction();
        // Parking the card at idle saves a meaningful fraction of the
        // always-on hardware level.
        assert!(saving > 0.05, "saving {saving}");
    }

    #[test]
    fn high_load_saves_versus_software_only() {
        // §1/§9: on demand "saves up to 50% of the power compared with
        // software-based solutions" — at high rate, hardware placement
        // beats the software baseline by a wide margin.
        let env = kvs_envelope();
        let pts = env.sample(1_000_000.0, 10);
        let last = pts.last().unwrap();
        let saving = 1.0 - last.on_demand_w / last.software_w;
        assert!(saving > 0.40, "saving at peak {saving}");
    }

    #[test]
    fn shift_rate_is_below_software_peak() {
        let env = kvs_envelope();
        let shift = env.shift_rate();
        assert!(shift > 0.0 && shift < env.software.peak_pps, "{shift}");
    }
}
