//! The §9.4 analysis: on-demand offloading to a Top-of-Rack switch ASIC.
//!
//! A ToR switch serves a whole rack, its idle power does not depend on the
//! program (§6), and its dynamic power is tiny per packet: "taking less
//! than 5W per 100G port, a million queries will draw less than 1W". The
//! consequence: `Pd_net(R) = Pd_sw(R)` already at `R ≈ 0` — offloading to
//! an installed programmable switch pays from the first packet. The
//! partial-offload case (the switch caching some requests, the host
//! serving misses) depends on the hit ratio.

use inc_power::{calib, CpuModel};

/// A rack with a programmable ToR switch.
#[derive(Clone, Copy, Debug)]
pub struct TorRack {
    /// Number of server nodes in the rack.
    pub nodes: u32,
    /// Per-server CPU model.
    pub server: CpuModel,
    /// Number of 100G-equivalent switch ports.
    pub switch_ports_100g: u32,
    /// Server peak request rate (requests/second).
    pub server_peak_pps: f64,
}

impl TorRack {
    /// A typical rack: 40 servers under a 32×100G ToR.
    pub fn typical() -> Self {
        TorRack {
            nodes: 40,
            server: CpuModel::xeon_e5_2660_v4_dual(),
            switch_ports_100g: 32,
            server_peak_pps: 1_000_000.0,
        }
    }

    /// Switch *dynamic* power attributable to forwarding `rate_pps`
    /// application packets (§9.4: < 1 W per Mqps of ≤1500 B packets).
    pub fn switch_dynamic_w(&self, rate_pps: f64) -> f64 {
        calib::SWITCH_W_PER_MQPS * rate_pps / 1e6
    }

    /// Server dynamic power when serving `rate_pps` on one node.
    pub fn server_dynamic_w(&self, rate_pps: f64) -> f64 {
        let util = (rate_pps / self.server_peak_pps) * self.server.cores as f64;
        self.server.dynamic_w(util)
    }

    /// The §9.4 conclusion: the offload tipping point in packets/second.
    ///
    /// "PNd(R) will equal PSd(R) when R is almost zero" — the returned
    /// rate is tiny compared to any realistic workload.
    pub fn tipping_point_pps(&self) -> f64 {
        inc_power::crossover_fn(
            |r| self.server_dynamic_w(r),
            |r| self.switch_dynamic_w(r),
            0.0,
            self.server_peak_pps,
        )
        .unwrap_or(0.0)
    }

    /// Total switch power envelope (idle ≈ max for these devices, §6).
    pub fn switch_power_w(&self) -> f64 {
        self.switch_ports_100g as f64 * calib::SWITCH_W_PER_100G_PORT
    }

    /// Partial offload (§9.4's final case): the switch answers `hit_ratio`
    /// of requests, the host the rest. Returns (combined dynamic watts,
    /// host-only dynamic watts) at `rate_pps` so callers can judge the
    /// benefit as a function of hit ratio.
    pub fn partial_offload_dynamic_w(&self, rate_pps: f64, hit_ratio: f64) -> (f64, f64) {
        let hit_ratio = hit_ratio.clamp(0.0, 1.0);
        let hw = self.switch_dynamic_w(rate_pps);
        let host = self.server_dynamic_w(rate_pps * (1.0 - hit_ratio));
        let host_only = self.server_dynamic_w(rate_pps);
        (hw + host, host_only)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_mqps_draws_less_than_a_watt() {
        let rack = TorRack::typical();
        assert!(rack.switch_dynamic_w(1e6) <= 1.0);
    }

    #[test]
    fn tipping_point_is_almost_zero() {
        let rack = TorRack::typical();
        let r = rack.tipping_point_pps();
        // "R is almost zero": far below even 1 % of a server's peak.
        assert!(r < rack.server_peak_pps * 0.01, "tipping point {r} pps");
    }

    #[test]
    fn switch_beats_server_at_every_real_rate() {
        let rack = TorRack::typical();
        for rate in [10_000.0, 100_000.0, 1_000_000.0] {
            assert!(
                rack.switch_dynamic_w(rate) < rack.server_dynamic_w(rate),
                "at {rate} pps"
            );
        }
    }

    #[test]
    fn partial_offload_benefit_grows_with_hit_ratio() {
        let rack = TorRack::typical();
        let rate = 500_000.0;
        let (half, host_only) = rack.partial_offload_dynamic_w(rate, 0.5);
        let (most, _) = rack.partial_offload_dynamic_w(rate, 0.95);
        assert!(half < host_only);
        assert!(most < half);
    }

    #[test]
    fn switch_envelope_matches_port_budget() {
        let rack = TorRack::typical();
        // 32 ports × 5 W = 160 W envelope.
        assert!((rack.switch_power_w() - 160.0).abs() < 1e-9);
    }
}
