//! The §8 placement decision analysis: "When to Use In-Network Computing".
//!
//! The section poses two questions on top of the energy model
//! `E = Pd(f)·Td(W,f) + Ps·Ts + Pi·Ti`:
//!
//! 1. *Should standard network devices be replaced by programmable ones?*
//!    The dominant terms are the idle powers `Pi` — if the programmable
//!    device idles like the fixed-function one (§6 says it does for
//!    switch ASICs), adoption is free.
//! 2. *Given programmable devices, when should a workload be offloaded?*
//!    `Pi` and `Ps` cancel (same device either way), leaving the dynamic
//!    terms: shift at the rate `R` where `Pd_net(R) = Pd_sw(R)`.

use inc_power::EnergyParams;

/// Inputs to the two §8 questions.
#[derive(Clone, Copy, Debug)]
pub struct PlacementAnalysis {
    /// The software system (server running the workload).
    pub software: EnergyParams,
    /// The in-network system (device running the workload).
    pub network: EnergyParams,
}

impl PlacementAnalysis {
    /// Question 1: the idle-power penalty per second of replacing a
    /// standard device with the programmable one (positive = programmable
    /// idles hotter). §8: "the energy penalty of including it as part of
    /// normal network operation is the one to worry about".
    pub fn adoption_idle_penalty_w(&self, standard_idle_w: f64) -> f64 {
        self.network.idle_w - standard_idle_w
    }

    /// Question 2: the tipping-point rate where offloading starts paying
    /// (`Pd_net(R) = Pd_sw(R)` with the shared idle terms cancelled).
    ///
    /// Returns `None` if software stays cheaper across its whole operating
    /// range, and `Some(0.0)` if the network wins from the first packet
    /// (the §9.4 switch case).
    pub fn tipping_point_pps(&self) -> Option<f64> {
        // Dynamic power relative to each system's own idle: the device is
        // present in both placements, so only the deltas matter.
        let sw_dyn = move |r: f64| self.software.sustained_power_w(r) - self.software.idle_w;
        let hw_dyn = move |r: f64| self.network.sustained_power_w(r) - self.network.idle_w;
        // Both dynamics are zero at rate 0; start the scan just above so
        // the degenerate equality does not read as an immediate tipping
        // point.
        let lo = self.software.peak_rate_pps * 1e-6;
        inc_power::crossover_fn(sw_dyn, hw_dyn, lo, self.software.peak_rate_pps)
    }

    /// Whole-window energy comparison at a fixed rate (duty-cycled):
    /// returns (software joules, network joules) per second of operation.
    pub fn energy_per_second(&self, rate_pps: f64) -> (f64, f64) {
        (
            self.software.sustained_power_w(rate_pps),
            self.network.sustained_power_w(rate_pps),
        )
    }
}

/// Convenience: the §8 analysis for the paper's KVS deployment, derived
/// from the calibrated models.
pub fn kvs_analysis() -> PlacementAnalysis {
    use inc_power::calib;
    PlacementAnalysis {
        software: EnergyParams {
            idle_w: calib::I7_PLATFORM_IDLE_W + calib::MELLANOX_NIC_W,
            sleep_w: 5.0,
            active_w: 108.0,
            peak_rate_pps: calib::MEMCACHED_PEAK_PPS,
        },
        network: EnergyParams {
            idle_w: calib::I7_PLATFORM_IDLE_W + calib::LAKE_STANDALONE_IDLE_W,
            sleep_w: 5.0,
            active_w: calib::I7_PLATFORM_IDLE_W
                + calib::LAKE_STANDALONE_IDLE_W
                + calib::LAKE_DYNAMIC_MAX_W,
            peak_rate_pps: calib::LAKE_LINE_RATE_PPS,
        },
    }
}

/// The §8 analysis for the DNS deployment (§4.4): NSD on the i7 against
/// the Emu core on the SUME, derived from the calibrated models.
pub fn dns_analysis() -> PlacementAnalysis {
    use inc_power::calib;
    PlacementAnalysis {
        software: EnergyParams {
            idle_w: calib::I7_PLATFORM_IDLE_W + calib::INTEL_X520_NIC_W,
            sleep_w: 5.0,
            // NSD fully loaded: the i7_6700k_nsd curve peaks near 92 W
            // with the X520 added.
            active_w: 92.0,
            peak_rate_pps: calib::NSD_PEAK_RPS,
        },
        network: EnergyParams {
            idle_w: calib::I7_PLATFORM_IDLE_W + calib::EMU_DNS_STANDALONE_IDLE_W,
            sleep_w: 5.0,
            active_w: calib::I7_PLATFORM_IDLE_W
                + calib::EMU_DNS_STANDALONE_IDLE_W
                + calib::EMU_DNS_DYNAMIC_MAX_W,
            peak_rate_pps: calib::EMU_DNS_PEAK_RPS,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kvs_tipping_point_exists() {
        let a = kvs_analysis();
        let r = a.tipping_point_pps().expect("curves must cross");
        // With idle terms cancelled, the hardware's tiny dynamic power
        // wins early — well before the Figure 3(a) total-power crossover.
        assert!(r < 100_000.0, "tipping point {r}");
    }

    #[test]
    fn dns_offload_pays_from_low_rates() {
        // §4.4 / §9.4 flavour: Emu's dynamic power is nearly flat, so the
        // dynamic-terms tipping point sits at (almost) zero rate, while
        // the *total*-power crossing (Figure 3c) is set by the idle gap.
        let a = dns_analysis();
        let r = a.tipping_point_pps().expect("curves must cross");
        assert!(r < 20_000.0, "tipping point {r}");
        let (sw_hi, hw_hi) = a.energy_per_second(400_000.0);
        assert!(sw_hi > hw_hi, "offload must win at high rate");
    }

    #[test]
    fn adoption_penalty_is_idle_difference() {
        let a = kvs_analysis();
        // Versus a 9.5 W standard NIC in the same host.
        let penalty = a.adoption_idle_penalty_w(29.5 + 9.5);
        assert!((penalty - (29.2 - 9.5)).abs() < 0.5, "{penalty}");
    }

    #[test]
    fn energy_per_second_orders_with_rate() {
        let a = kvs_analysis();
        let (sw_lo, hw_lo) = a.energy_per_second(1_000.0);
        let (sw_hi, hw_hi) = a.energy_per_second(900_000.0);
        // Software energy grows steeply with rate; hardware barely moves.
        assert!(sw_hi - sw_lo > 30.0);
        assert!(hw_hi - hw_lo < 5.0);
    }

    #[test]
    fn no_tipping_point_when_software_always_cheaper() {
        let a = PlacementAnalysis {
            software: EnergyParams {
                idle_w: 30.0,
                sleep_w: 0.0,
                active_w: 31.0, // Nearly free software...
                peak_rate_pps: 1e6,
            },
            network: EnergyParams {
                idle_w: 30.0,
                sleep_w: 0.0,
                active_w: 60.0, // ...expensive accelerator.
                peak_rate_pps: 1e7,
            },
        };
        assert_eq!(a.tipping_point_pps(), None);
    }

    #[test]
    fn immediate_tipping_point_for_switch_like_device() {
        // §9.4: on a switch the dynamic cost of the workload is almost
        // zero, so the tipping point is at (nearly) zero rate.
        let a = PlacementAnalysis {
            software: EnergyParams {
                idle_w: 56.0,
                sleep_w: 0.0,
                active_w: 134.0,
                peak_rate_pps: 1e6,
            },
            network: EnergyParams {
                idle_w: 205.0,
                sleep_w: 0.0,
                active_w: 205.1,
                peak_rate_pps: 2.5e9,
            },
        };
        let r = a.tipping_point_pps().expect("crosses immediately");
        assert!(r < 2_000.0, "tipping point {r}");
    }
}
