//! Harness for running host-controlled on-demand experiments.
//!
//! The host controller is a daemon *outside* the dataplane: it periodically
//! reads RAPL and CPU usage on the host and the packet-rate feedback from
//! the device, then reconfigures placement. [`run_host_controlled`] plays
//! that daemon against a simulation: it steps the simulator one sampling
//! interval at a time, gathers a [`HostSample`] through a caller-provided
//! probe, and applies the controller's decisions — while recording the
//! timeline that Figure 6 plots.

use inc_hw::Placement;
use inc_sim::{Nanos, Payload, Simulator};

use crate::host::{HostController, HostSample};

/// One timeline row (the Figure 6/7 plot data).
#[derive(Clone, Copy, Debug)]
pub struct TimelineRow {
    /// Sample time.
    pub t: Nanos,
    /// Application throughput over the interval, packets/second.
    pub throughput_pps: f64,
    /// Median request latency over the interval, nanoseconds (0 if no
    /// requests completed).
    pub latency_p50_ns: u64,
    /// 99th percentile latency, nanoseconds.
    pub latency_p99_ns: u64,
    /// Metered system power, watts.
    pub power_w: f64,
    /// Placement in effect at the end of the interval.
    pub placement: Placement,
}

/// The recorded timeline of a run.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    /// Rows, one per sampling interval.
    pub rows: Vec<TimelineRow>,
    /// Times at which the placement changed.
    pub shifts: Vec<(Nanos, Placement)>,
}

impl Timeline {
    /// Mean power over rows in `[from, to)`.
    pub fn mean_power_w(&self, from: Nanos, to: Nanos) -> f64 {
        let rows: Vec<_> = self
            .rows
            .iter()
            .filter(|r| r.t >= from && r.t < to)
            .collect();
        if rows.is_empty() {
            return 0.0;
        }
        rows.iter().map(|r| r.power_w).sum::<f64>() / rows.len() as f64
    }

    /// Mean throughput over rows in `[from, to)`.
    pub fn mean_throughput_pps(&self, from: Nanos, to: Nanos) -> f64 {
        let rows: Vec<_> = self
            .rows
            .iter()
            .filter(|r| r.t >= from && r.t < to)
            .collect();
        if rows.is_empty() {
            return 0.0;
        }
        rows.iter().map(|r| r.throughput_pps).sum::<f64>() / rows.len() as f64
    }

    /// Median of the per-row median latencies in `[from, to)`, ignoring
    /// empty rows.
    pub fn median_latency_ns(&self, from: Nanos, to: Nanos) -> u64 {
        let mut l: Vec<u64> = self
            .rows
            .iter()
            .filter(|r| r.t >= from && r.t < to && r.latency_p50_ns > 0)
            .map(|r| r.latency_p50_ns)
            .collect();
        if l.is_empty() {
            return 0;
        }
        l.sort_unstable();
        l[l.len() / 2]
    }
}

/// Everything the harness needs to observe per interval.
#[derive(Clone, Copy, Debug)]
pub struct IntervalObservation {
    /// The controller inputs.
    pub sample: HostSample,
    /// Responses completed in the interval.
    pub completed: u64,
    /// Median latency over the interval, nanoseconds.
    pub latency_p50_ns: u64,
    /// p99 latency over the interval, nanoseconds.
    pub latency_p99_ns: u64,
    /// Metered power, watts.
    pub power_w: f64,
}

/// Runs a host-controlled on-demand experiment until `until`.
///
/// * `probe` inspects the simulation and returns the interval observation
///   (it may mutate nodes to drain measurement windows);
/// * `apply` executes a placement decision on the simulated hardware.
pub fn run_host_controlled<M: Payload>(
    sim: &mut Simulator<M>,
    controller: &mut HostController,
    until: Nanos,
    mut probe: impl FnMut(&mut Simulator<M>) -> IntervalObservation,
    mut apply: impl FnMut(&mut Simulator<M>, Nanos, Placement),
) -> Timeline {
    let interval = controller.config().interval;
    let mut timeline = Timeline::default();
    let mut t = sim.now();
    while t < until {
        t += interval;
        sim.run_until(t);
        let obs = probe(sim);
        if let Some(p) = controller.sample(t, obs.sample) {
            apply(sim, t, p);
            timeline.shifts.push((t, p));
        }
        timeline.rows.push(TimelineRow {
            t,
            throughput_pps: obs.completed as f64 / interval.as_secs_f64(),
            latency_p50_ns: obs.latency_p50_ns,
            latency_p99_ns: obs.latency_p99_ns,
            power_w: obs.power_w,
            placement: controller.placement(),
        });
    }
    timeline
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostControllerConfig;

    /// A synthetic closed-form "system": software latency is high, power
    /// grows with rate; hardware flips both. Exercises the full control
    /// loop without network machinery.
    #[test]
    fn control_loop_shifts_and_records() {
        let mut sim: Simulator<()> = Simulator::new(0);
        let cfg = HostControllerConfig {
            interval: Nanos::from_millis(100),
            power_up_w: 60.0,
            cpu_up_util: 0.2,
            rate_down_pps: 5_000.0,
            power_down_w: 55.0,
            sustain_samples: 3,
        };
        let mut ctl = HostController::new(cfg);
        // Offered rate: low for 2 s, high for 3 s, low again.
        let offered = |t: Nanos| -> f64 {
            let s = t.as_secs_f64();
            if (2.0..5.0).contains(&s) {
                50_000.0
            } else {
                1_000.0
            }
        };
        let placement = std::cell::Cell::new(Placement::Software);
        let timeline = run_host_controlled(
            &mut sim,
            &mut ctl,
            Nanos::from_secs(8),
            |sim| {
                let rate = offered(sim.now());
                let sw = placement.get() == Placement::Software;
                IntervalObservation {
                    sample: HostSample {
                        rapl_w: if sw { 39.0 + rate / 1_000.0 } else { 30.0 },
                        app_cpu_util: if sw { rate / 100_000.0 } else { 0.0 },
                        hw_app_rate: if sw { 0.0 } else { rate },
                    },
                    completed: (rate / 10.0) as u64,
                    latency_p50_ns: if sw { 13_500 } else { 1_400 },
                    latency_p99_ns: if sw { 20_000 } else { 2_000 },
                    power_w: if sw { 39.0 + rate / 1_500.0 } else { 59.0 },
                }
            },
            |_sim, _t, p| placement.set(p),
        );
        // One shift up (during the burst) and one back down (after).
        assert_eq!(timeline.shifts.len(), 2);
        assert_eq!(timeline.shifts[0].1, Placement::Hardware);
        assert_eq!(timeline.shifts[1].1, Placement::Software);
        // The up-shift came after the 3-sample sustain inside the burst.
        let up_at = timeline.shifts[0].0;
        assert!(up_at >= Nanos::from_millis(2_200), "shift at {up_at}");
        assert!(up_at <= Nanos::from_millis(2_600), "shift at {up_at}");
        // Latency on the timeline drops ~10x across the shift.
        let before = timeline.median_latency_ns(Nanos::from_secs(1), Nanos::from_secs(2));
        let after = timeline.median_latency_ns(Nanos::from_secs(3), Nanos::from_secs(5));
        assert_eq!(before, 13_500);
        assert_eq!(after, 1_400);
        assert_eq!(timeline.rows.len(), 80);
    }
}
