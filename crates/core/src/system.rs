//! Harness for running host-controlled on-demand experiments.
//!
//! The host controller is a daemon *outside* the dataplane: it periodically
//! reads RAPL and CPU usage on the host and the packet-rate feedback from
//! the device, then reconfigures placement. [`run_host_controlled`] plays
//! that daemon against a simulation: it steps the simulator one sampling
//! interval at a time, gathers a [`HostSample`] through a caller-provided
//! probe, and applies the controller's decisions — while recording the
//! timeline that Figure 6 plots.
//!
//! # Row logging and streaming aggregates
//!
//! A [`Timeline`] keeps O(1) streaming aggregates — a duration-weighted
//! [`StreamStats`] of power (whose weighted sum *is* the energy
//! integral), a completed-request counter, and a [`Histogram`] sketch of
//! the per-interval median latencies — updated on every [`Timeline::push`]
//! regardless of mode. What the [`RowLog`] mode controls is row
//! *retention*: [`RowLog::Full`] keeps every [`TimelineRow`] (the plots
//! and fine-grained window queries need them), while
//! [`RowLog::Recent`]`(n)` retains only the newest `n` rows so memory
//! stays constant however long the run — the heavy-traffic replay mode.
//! Queries whose window covers the whole recorded span answer from the
//! aggregates in *both* modes, and the aggregates accumulate in row
//! (push) order, so full-span results are bit-for-bit identical across
//! modes; partial windows are answered from whatever rows are retained.

use inc_hw::Placement;
use inc_sim::{Histogram, Nanos, Payload, RecentRing, Simulator, StreamStats};

use crate::fleet::{AdmissionDecision, FleetSample, FleetScheduler};
use crate::host::{HostController, HostSample};

/// One timeline row (the Figure 6/7 plot data).
#[derive(Clone, Copy, Debug)]
pub struct TimelineRow {
    /// Sample time (end of the interval).
    pub t: Nanos,
    /// Length of the sampling interval ending at `t`.
    pub interval: Nanos,
    /// Responses completed in the interval.
    pub completed: u64,
    /// Application throughput over the interval, packets/second.
    pub throughput_pps: f64,
    /// Median request latency over the interval, nanoseconds (0 if no
    /// requests completed).
    pub latency_p50_ns: u64,
    /// 99th percentile latency, nanoseconds.
    pub latency_p99_ns: u64,
    /// Metered system power, watts.
    pub power_w: f64,
    /// Placement in effect at the end of the interval.
    pub placement: Placement,
}

/// How a [`Timeline`] retains its rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RowLog {
    /// Keep every row — the default, required by the fig6/fig7 plots and
    /// by window queries over arbitrary sub-spans.
    Full,
    /// Keep only the newest `n` rows; memory is O(n) however long the
    /// run. Full-span queries still answer exactly (they read the
    /// streaming aggregates); partial-window queries see only the
    /// retained tail.
    Recent(usize),
}

/// The recorded timeline of a run.
///
/// Rows are accessed through [`Timeline::rows`]; construction goes
/// through [`Timeline::new`]/[`Timeline::push`] (or
/// [`Timeline::from_rows`] for tests) so the streaming aggregates stay
/// consistent with the rows.
#[derive(Clone, Debug)]
pub struct Timeline {
    rows: RecentRing<TimelineRow>,
    /// Times at which the placement changed.
    pub shifts: Vec<(Nanos, Placement)>,
    mode: RowLog,
    /// Duration-weighted power: `weighted_sum()` is the energy integral
    /// in joules, `total_weight()` the sampled seconds.
    power: StreamStats,
    completed_total: u64,
    /// Sketch of the nonzero per-row median latencies, for O(1)
    /// full-span median queries in [`RowLog::Recent`] mode.
    latency_sketch: Histogram,
    /// `t` of the first and last rows ever pushed.
    span: Option<(Nanos, Nanos)>,
}

impl Default for Timeline {
    fn default() -> Self {
        Timeline::new(RowLog::Full)
    }
}

impl Timeline {
    /// An empty timeline with the given row-retention mode.
    pub fn new(mode: RowLog) -> Self {
        let rows = match mode {
            RowLog::Full => RecentRing::unbounded(),
            RowLog::Recent(cap) => RecentRing::bounded(cap),
        };
        Timeline {
            rows,
            shifts: Vec::new(),
            mode,
            power: StreamStats::new(),
            completed_total: 0,
            latency_sketch: Histogram::new(),
            span: None,
        }
    }

    /// A fully-logged timeline built from pre-made rows (test helper).
    pub fn from_rows(rows: Vec<TimelineRow>) -> Self {
        let mut timeline = Timeline::new(RowLog::Full);
        for row in rows {
            timeline.push(row);
        }
        timeline
    }

    /// Appends a row, updating the streaming aggregates in push order
    /// (the order-sensitivity is what makes full-span query results
    /// bit-for-bit identical across [`RowLog`] modes).
    pub fn push(&mut self, row: TimelineRow) {
        self.power
            .push_weighted(row.power_w, row.interval.as_secs_f64());
        self.completed_total += row.completed;
        if row.latency_p50_ns > 0 {
            self.latency_sketch.record(row.latency_p50_ns);
        }
        self.span = Some(match self.span {
            None => (row.t, row.t),
            Some((first, _)) => (first, row.t),
        });
        self.rows.push(row);
    }

    /// The retained rows, oldest first (every row in [`RowLog::Full`]
    /// mode, the newest tail in [`RowLog::Recent`]).
    pub fn rows(&self) -> &[TimelineRow] {
        self.rows.as_slice()
    }

    /// Rows ever pushed (≥ `rows().len()` in [`RowLog::Recent`] mode).
    pub fn total_rows(&self) -> u64 {
        self.rows.total()
    }

    /// Rows currently held in memory.
    pub fn retained_rows(&self) -> usize {
        self.rows.len()
    }

    /// The row-retention mode.
    pub fn mode(&self) -> RowLog {
        self.mode
    }

    /// Responses completed across every row ever pushed.
    pub fn total_completed(&self) -> u64 {
        self.completed_total
    }

    fn window(&self, from: Nanos, to: Nanos) -> impl Iterator<Item = &TimelineRow> {
        self.rows().iter().filter(move |r| r.t >= from && r.t < to)
    }

    /// Whether `[from, to)` contains every row ever pushed — the case
    /// the streaming aggregates answer exactly, evicted rows included.
    fn covers_all(&self, from: Nanos, to: Nanos) -> bool {
        self.span
            .is_some_and(|(first, last)| from <= first && to > last)
    }

    /// Duration-weighted mean power over rows in `[from, to)`, or `None`
    /// if the window holds no rows (indistinguishable sentinels like a
    /// literal `0.0` reading are not used).
    pub fn mean_power_w(&self, from: Nanos, to: Nanos) -> Option<f64> {
        if self.covers_all(from, to) {
            let secs = self.power.total_weight();
            return (secs > 0.0).then(|| self.power.weighted_sum() / secs);
        }
        let (mut joules, mut secs) = (0.0, 0.0);
        for r in self.window(from, to) {
            let dt = r.interval.as_secs_f64();
            joules += r.power_w * dt;
            secs += dt;
        }
        (secs > 0.0).then(|| joules / secs)
    }

    /// Mean throughput over rows in `[from, to)` — total completed
    /// requests divided by total sampled time, so rows are weighted by
    /// their interval length rather than averaged per-row (an unweighted
    /// mean over-counts short or idle intervals when intervals differ).
    /// `None` if the window holds no rows.
    pub fn mean_throughput_pps(&self, from: Nanos, to: Nanos) -> Option<f64> {
        if self.covers_all(from, to) {
            let secs = self.power.total_weight();
            return (secs > 0.0).then(|| self.completed_total as f64 / secs);
        }
        let (mut completed, mut secs) = (0u64, 0.0);
        for r in self.window(from, to) {
            completed += r.completed;
            secs += r.interval.as_secs_f64();
        }
        (secs > 0.0).then(|| completed as f64 / secs)
    }

    /// Median of the per-row median latencies in `[from, to)`, ignoring
    /// rows in which no request completed (their `latency_p50_ns` is 0).
    /// `None` when every row in the window is empty. For an even number
    /// of contributing rows this is the mean of the two middle elements,
    /// rounded to the nearest nanosecond.
    ///
    /// In [`RowLog::Recent`] mode a full-span query reads the
    /// [`Histogram`] quantile sketch instead of the (partially evicted)
    /// rows: the answer covers every row ever pushed, exact to within
    /// the sketch's 1/32 bucket resolution.
    pub fn median_latency_ns(&self, from: Nanos, to: Nanos) -> Option<u64> {
        if matches!(self.mode, RowLog::Recent(_)) && self.covers_all(from, to) {
            return (self.latency_sketch.count() > 0).then(|| self.latency_sketch.quantile(0.5));
        }
        let mut l: Vec<u64> = self
            .window(from, to)
            .filter(|r| r.latency_p50_ns > 0)
            .map(|r| r.latency_p50_ns)
            .collect();
        if l.is_empty() {
            return None;
        }
        // Selection, not a full sort: the two middle order statistics
        // are all a median needs.
        let mid = l.len() / 2;
        let odd = l.len() % 2 == 1;
        let (lower, upper_mid, _) = l.select_nth_unstable(mid);
        let b = *upper_mid;
        Some(if odd {
            b
        } else {
            let a = *lower.iter().max().expect("even window has a lower half");
            // Round half up: (a + b + 1) / 2 without overflow.
            a / 2 + b / 2 + (a % 2 + b % 2).div_ceil(2)
        })
    }

    /// Total metered energy across all rows ever pushed, joules.
    pub fn energy_j(&self) -> f64 {
        self.power.weighted_sum()
    }
}

/// Everything the harness needs to observe per interval.
#[derive(Clone, Copy, Debug)]
pub struct IntervalObservation {
    /// The controller inputs.
    pub sample: HostSample,
    /// Responses completed in the interval.
    pub completed: u64,
    /// Median latency over the interval, nanoseconds.
    pub latency_p50_ns: u64,
    /// p99 latency over the interval, nanoseconds.
    pub latency_p99_ns: u64,
    /// Metered power, watts.
    pub power_w: f64,
}

/// Runs a host-controlled on-demand experiment until `until`, logging
/// every row ([`RowLog::Full`]).
///
/// * `probe` inspects the simulation and returns the interval observation
///   (it may mutate nodes to drain measurement windows);
/// * `apply` executes a placement decision on the simulated hardware.
pub fn run_host_controlled<M: Payload>(
    sim: &mut Simulator<M>,
    controller: &mut HostController,
    until: Nanos,
    probe: impl FnMut(&mut Simulator<M>) -> IntervalObservation,
    apply: impl FnMut(&mut Simulator<M>, Nanos, Placement),
) -> Timeline {
    run_host_controlled_with(sim, controller, until, RowLog::Full, probe, apply)
}

/// [`run_host_controlled`] with an explicit row-retention mode.
pub fn run_host_controlled_with<M: Payload>(
    sim: &mut Simulator<M>,
    controller: &mut HostController,
    until: Nanos,
    mode: RowLog,
    mut probe: impl FnMut(&mut Simulator<M>) -> IntervalObservation,
    mut apply: impl FnMut(&mut Simulator<M>, Nanos, Placement),
) -> Timeline {
    let interval = controller.config().interval;
    let mut timeline = Timeline::new(mode);
    let mut t = sim.now();
    while t < until {
        t += interval;
        sim.run_until(t);
        let obs = probe(sim);
        if let Some(p) = controller.sample(t, obs.sample) {
            apply(sim, t, p);
            timeline.shifts.push((t, p));
        }
        timeline.push(TimelineRow {
            t,
            interval,
            completed: obs.completed,
            throughput_pps: obs.completed as f64 / interval.as_secs_f64(),
            latency_p50_ns: obs.latency_p50_ns,
            latency_p99_ns: obs.latency_p99_ns,
            power_w: obs.power_w,
            placement: controller.placement(),
        });
    }
    timeline
}

/// Everything the multi-app harness needs to observe per app per
/// interval: the fleet controller inputs plus the plot data.
#[derive(Clone, Copy, Debug)]
pub struct AppObservation {
    /// The controller inputs for this app.
    pub sample: FleetSample,
    /// Responses completed in the interval.
    pub completed: u64,
    /// Median latency over the interval, nanoseconds.
    pub latency_p50_ns: u64,
    /// p99 latency over the interval, nanoseconds.
    pub latency_p99_ns: u64,
    /// Metered power of this app's slice of the system (its server plus
    /// its share of the device), watts.
    pub power_w: f64,
}

/// The recorded outcome of a fleet run.
#[derive(Clone, Debug, Default)]
pub struct FleetTimeline {
    /// One timeline per app, indexed like the controller's app vector.
    pub per_app: Vec<Timeline>,
    /// Every placement change, in decision order: (time, app, placement).
    pub shifts: Vec<(Nanos, usize, Placement)>,
    /// Total metered energy over the run (all apps' slices), joules.
    /// Always physical joules, whatever
    /// [`Objective`](crate::fleet::Objective) the controller priced
    /// decisions in: prices steer placements, meters stay watts — which
    /// is what makes energy comparable across objectives.
    pub energy_j: f64,
    /// Each app's admission verdict at the end of the run: the
    /// back-pressure surface — `Reject` names tenants whose demand can
    /// never fit the fabric, `Queue` tenants still waiting for capacity.
    pub admission: Vec<AdmissionDecision>,
    /// Cumulative sampling intervals each app spent queued (wanting
    /// capacity without receiving it), indexed like `per_app`.
    pub queued_intervals: Vec<u64>,
}

impl FleetTimeline {
    /// Shifts executed for one app (the app's own timeline records them;
    /// the global [`FleetTimeline::shifts`] keeps the cross-app decision
    /// order).
    pub fn shifts_for(&self, app: usize) -> &[(Nanos, Placement)] {
        &self.per_app[app].shifts
    }
}

/// Runs a fleet-controlled multi-application experiment until `until`,
/// logging every row ([`RowLog::Full`]).
///
/// The multi-app generalisation of [`run_host_controlled`]: the simulator
/// steps one sampling interval at a time; `probe` returns one
/// [`AppObservation`] per app (same order as the controller's app
/// vector); the controller re-solves its placement knapsack; `apply`
/// executes each placement change on the simulated hardware. Records one
/// [`Timeline`] per app plus the fleet-level energy total. Generic over
/// the [`FleetScheduler`]: the flat
/// [`FleetController`](crate::fleet::FleetController) and the
/// hierarchical
/// [`HierarchicalController`](crate::arbiter::HierarchicalController)
/// both drive it.
///
/// The run advances in whole sampling intervals, so when `until` is not
/// an interval multiple the final interval extends past it; read the
/// covered span off the recorded rows (last row `t`), not `until`.
pub fn run_fleet_controlled<M: Payload, S: FleetScheduler>(
    sim: &mut Simulator<M>,
    controller: &mut S,
    until: Nanos,
    probe: impl FnMut(&mut Simulator<M>) -> Vec<AppObservation>,
    apply: impl FnMut(&mut Simulator<M>, Nanos, usize, Placement),
) -> FleetTimeline {
    run_fleet_controlled_with(sim, controller, until, RowLog::Full, probe, apply)
}

/// [`run_fleet_controlled`] with an explicit row-retention mode.
pub fn run_fleet_controlled_with<M: Payload, S: FleetScheduler>(
    sim: &mut Simulator<M>,
    controller: &mut S,
    until: Nanos,
    mode: RowLog,
    mut probe: impl FnMut(&mut Simulator<M>) -> Vec<AppObservation>,
    mut apply: impl FnMut(&mut Simulator<M>, Nanos, usize, Placement),
) -> FleetTimeline {
    let interval = controller.interval();
    let n = controller.app_count();
    let mut timeline = FleetTimeline {
        per_app: (0..n).map(|_| Timeline::new(mode)).collect(),
        ..FleetTimeline::default()
    };
    let mut t = sim.now();
    while t < until {
        t += interval;
        sim.run_until(t);
        let obs = probe(sim);
        assert_eq!(obs.len(), n, "probe must observe every app");
        let samples: Vec<FleetSample> = obs.iter().map(|o| o.sample).collect();
        for (app, placement) in controller.sample(t, &samples) {
            apply(sim, t, app, placement);
            timeline.shifts.push((t, app, placement));
            timeline.per_app[app].shifts.push((t, placement));
        }
        for (app, o) in obs.iter().enumerate() {
            timeline.per_app[app].push(TimelineRow {
                t,
                interval,
                completed: o.completed,
                throughput_pps: o.completed as f64 / interval.as_secs_f64(),
                latency_p50_ns: o.latency_p50_ns,
                latency_p99_ns: o.latency_p99_ns,
                power_w: o.power_w,
                placement: controller.placements()[app],
            });
            timeline.energy_j += o.power_w * interval.as_secs_f64();
        }
    }
    timeline.admission = (0..n).map(|i| controller.admission_decision(i)).collect();
    timeline.queued_intervals = controller.queued_intervals().to_vec();
    timeline
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostControllerConfig;

    /// A synthetic closed-form "system": software latency is high, power
    /// grows with rate; hardware flips both. Exercises the full control
    /// loop without network machinery.
    #[test]
    fn control_loop_shifts_and_records() {
        let mut sim: Simulator<()> = Simulator::new(0);
        let cfg = HostControllerConfig {
            interval: Nanos::from_millis(100),
            power_up_w: 60.0,
            cpu_up_util: 0.2,
            rate_down_pps: 5_000.0,
            power_down_w: 55.0,
            sustain_samples: 3,
        };
        let mut ctl = HostController::new(cfg);
        // Offered rate: low for 2 s, high for 3 s, low again.
        let offered = |t: Nanos| -> f64 {
            let s = t.as_secs_f64();
            if (2.0..5.0).contains(&s) {
                50_000.0
            } else {
                1_000.0
            }
        };
        let placement = std::cell::Cell::new(Placement::Software);
        let timeline = run_host_controlled(
            &mut sim,
            &mut ctl,
            Nanos::from_secs(8),
            |sim| {
                let rate = offered(sim.now());
                let sw = placement.get() == Placement::Software;
                IntervalObservation {
                    sample: HostSample {
                        rapl_w: if sw { 39.0 + rate / 1_000.0 } else { 30.0 },
                        app_cpu_util: if sw { rate / 100_000.0 } else { 0.0 },
                        hw_app_rate: if sw { 0.0 } else { rate },
                    },
                    completed: (rate / 10.0) as u64,
                    latency_p50_ns: if sw { 13_500 } else { 1_400 },
                    latency_p99_ns: if sw { 20_000 } else { 2_000 },
                    power_w: if sw { 39.0 + rate / 1_500.0 } else { 59.0 },
                }
            },
            |_sim, _t, p| placement.set(p),
        );
        // One shift up (during the burst) and one back down (after).
        assert_eq!(timeline.shifts.len(), 2);
        assert_eq!(timeline.shifts[0].1, Placement::HARDWARE);
        assert_eq!(timeline.shifts[1].1, Placement::Software);
        // The up-shift came after the 3-sample sustain inside the burst.
        let up_at = timeline.shifts[0].0;
        assert!(up_at >= Nanos::from_millis(2_200), "shift at {up_at}");
        assert!(up_at <= Nanos::from_millis(2_600), "shift at {up_at}");
        // Latency on the timeline drops ~10x across the shift.
        let before = timeline.median_latency_ns(Nanos::from_secs(1), Nanos::from_secs(2));
        let after = timeline.median_latency_ns(Nanos::from_secs(3), Nanos::from_secs(5));
        assert_eq!(before, Some(13_500));
        assert_eq!(after, Some(1_400));
        assert_eq!(timeline.rows().len(), 80);
    }

    /// Two synthetic apps contending for a one-slot device, closed-form
    /// (no network machinery): app 1 is busy in [1 s, 4 s), app 0 in
    /// [3 s, 7 s). The fleet offloads whichever is profitable and
    /// arbitrates the overlap in favour of app 1 (better economics).
    #[test]
    fn fleet_loop_arbitrates_and_records() {
        use crate::decision::PlacementAnalysis;
        use crate::fleet::{FleetApp, FleetControllerConfig};
        use inc_hw::{DeviceFabric, DeviceId, PipelineBudget, ProgramResources};
        use inc_power::EnergyParams;

        let analysis = |slope_per_kpps: f64| PlacementAnalysis {
            software: EnergyParams {
                idle_w: 40.0,
                sleep_w: 0.0,
                active_w: 40.0 + slope_per_kpps * 1_000.0,
                peak_rate_pps: 1_000_000.0,
            },
            network: EnergyParams {
                idle_w: 42.0,
                sleep_w: 0.0,
                active_w: 42.1,
                peak_rate_pps: 10_000_000.0,
            },
        };
        let demand = |stages: u32| ProgramResources {
            stages,
            sram_bytes: 1 << 20,
            parse_depth_bytes: 64,
        };
        let apps = vec![
            FleetApp {
                name: "slow-burner".into(),
                demand: demand(7),
                analysis: analysis(0.08),
                home: DeviceId::LOCAL,
                weight: 1.0,
            },
            FleetApp {
                name: "hot-shot".into(),
                demand: demand(6),
                analysis: analysis(0.16),
                home: DeviceId::LOCAL,
                weight: 1.0,
            },
        ];
        let mut ctl = crate::fleet::FleetController::new(
            FleetControllerConfig::standard(Nanos::from_millis(100)),
            DeviceFabric::single(PipelineBudget::tofino_like()),
            apps,
        );
        let mut sim: Simulator<()> = Simulator::new(0);
        let placements = std::cell::RefCell::new(vec![Placement::Software; 2]);
        let offered = |app: usize, t: Nanos| -> f64 {
            let s = t.as_secs_f64();
            let busy = match app {
                0 => (3.0..7.0).contains(&s),
                _ => (1.0..4.0).contains(&s),
            };
            if busy {
                100_000.0
            } else {
                1_000.0
            }
        };
        let timeline = run_fleet_controlled(
            &mut sim,
            &mut ctl,
            Nanos::from_secs(9),
            |sim| {
                let now = sim.now();
                (0..2)
                    .map(|app| {
                        let rate = offered(app, now);
                        let hw = placements.borrow()[app] == Placement::HARDWARE;
                        AppObservation {
                            sample: FleetSample {
                                host: HostSample {
                                    rapl_w: 40.0,
                                    app_cpu_util: if hw { 0.0 } else { rate / 1e6 },
                                    hw_app_rate: if hw { rate } else { 0.0 },
                                },
                                offered_pps: if hw { 0.0 } else { rate },
                            },
                            completed: (rate / 10.0) as u64,
                            latency_p50_ns: if hw { 1_500 } else { 12_000 },
                            latency_p99_ns: if hw { 2_000 } else { 19_000 },
                            power_w: 40.0 + if hw { 2.0 } else { rate * 8e-5 },
                        }
                    })
                    .collect()
            },
            |_sim, _t, app, p| placements.borrow_mut()[app] = p,
        );

        // App 1 offloads first (its burst starts first AND it scores
        // higher); app 0 must wait for app 1's eviction, then offloads;
        // both end in software.
        let s1 = timeline.shifts_for(1);
        assert_eq!(s1.len(), 2, "app 1 round-trips: {s1:?}");
        assert_eq!(s1[0].1, Placement::HARDWARE);
        assert!(s1[0].0 < Nanos::from_secs(2));
        let s0 = timeline.shifts_for(0);
        assert_eq!(s0.len(), 2, "app 0 round-trips: {s0:?}");
        assert_eq!(s0[0].1, Placement::HARDWARE);
        // App 0 could only enter after app 1 left (one slot).
        assert!(s0[0].0 >= s1[1].0, "{s0:?} vs {s1:?}");
        // The capacity bound held at every row.
        for (r0, r1) in timeline.per_app[0]
            .rows()
            .iter()
            .zip(timeline.per_app[1].rows())
        {
            assert!(
                !(r0.placement == Placement::HARDWARE && r1.placement == Placement::HARDWARE),
                "both hardware-resident at {}",
                r0.t
            );
        }
        // Energy bookkeeping matches the per-app timelines.
        let summed: f64 = timeline.per_app.iter().map(Timeline::energy_j).sum();
        assert!((timeline.energy_j - summed).abs() < 1e-6);
        assert_eq!(timeline.per_app[0].rows().len(), 90);
    }

    fn row(t_ms: u64, interval_ms: u64, completed: u64, p50: u64, power: f64) -> TimelineRow {
        let interval = Nanos::from_millis(interval_ms);
        TimelineRow {
            t: Nanos::from_millis(t_ms),
            interval,
            completed,
            throughput_pps: completed as f64 / interval.as_secs_f64(),
            latency_p50_ns: p50,
            latency_p99_ns: p50 * 2,
            power_w: power,
            placement: Placement::Software,
        }
    }

    #[test]
    fn median_latency_even_window_uses_both_middle_rows() {
        // Regression: the old implementation returned l[len/2] — the
        // *upper* of the two middle elements on even-length windows.
        let timeline = Timeline::from_rows(vec![
            row(100, 100, 10, 1_000, 50.0),
            row(200, 100, 10, 2_000, 50.0),
            row(300, 100, 10, 4_000, 50.0),
            row(400, 100, 10, 9_000, 50.0),
        ]);
        // Four rows: median = (2000 + 4000) / 2, not 4000.
        assert_eq!(
            timeline.median_latency_ns(Nanos::ZERO, Nanos::from_secs(1)),
            Some(3_000)
        );
        // Odd sub-window still returns the middle element.
        assert_eq!(
            timeline.median_latency_ns(Nanos::ZERO, Nanos::from_millis(350)),
            Some(2_000)
        );
        // Rounding: (1000 + 2001 + 1) / 2 = 1501 (half away from zero).
        let t2 = Timeline::from_rows(vec![
            row(100, 100, 1, 1_000, 0.0),
            row(200, 100, 1, 2_001, 0.0),
        ]);
        assert_eq!(
            t2.median_latency_ns(Nanos::ZERO, Nanos::from_secs(1)),
            Some(1_501)
        );
    }

    #[test]
    fn mean_throughput_weights_by_interval() {
        // Regression: a short busy interval must not count as much as a
        // long idle one. 100 ms at 10 kpps + 900 ms at 0 pps = 1 kpps.
        let timeline = Timeline::from_rows(vec![
            row(100, 100, 1_000, 500, 40.0),
            row(1000, 900, 0, 0, 40.0),
        ]);
        let mean = timeline
            .mean_throughput_pps(Nanos::ZERO, Nanos::from_secs(2))
            .unwrap();
        // The old unweighted mean of per-row rates said 5 kpps.
        assert!((mean - 1_000.0).abs() < 1e-6, "mean {mean}");
        // Power is duration-weighted the same way.
        let timeline =
            Timeline::from_rows(vec![row(100, 100, 0, 0, 100.0), row(1000, 900, 0, 0, 50.0)]);
        let p = timeline
            .mean_power_w(Nanos::ZERO, Nanos::from_secs(2))
            .unwrap();
        assert!((p - 55.0).abs() < 1e-9, "power {p}");
        assert!((timeline.energy_j() - 55.0).abs() < 1e-9);
    }

    #[test]
    fn empty_windows_are_none_not_zero() {
        let timeline = Timeline::from_rows(vec![row(100, 100, 0, 0, 40.0)]);
        let nowhere = (Nanos::from_secs(5), Nanos::from_secs(6));
        assert_eq!(timeline.mean_power_w(nowhere.0, nowhere.1), None);
        assert_eq!(timeline.mean_throughput_pps(nowhere.0, nowhere.1), None);
        assert_eq!(timeline.median_latency_ns(nowhere.0, nowhere.1), None);
        // A window with rows but no completed requests has a throughput
        // (zero) but no median latency.
        assert_eq!(
            timeline.mean_throughput_pps(Nanos::ZERO, Nanos::from_secs(1)),
            Some(0.0)
        );
        assert_eq!(
            timeline.median_latency_ns(Nanos::ZERO, Nanos::from_secs(1)),
            None
        );
    }

    /// Sub-window queries answer identically whether the window filter
    /// runs over retained rows or (for a covering window) the streaming
    /// aggregates — and the aggregate path is reached in both modes.
    #[test]
    fn full_span_queries_match_windowed_iteration_bitwise() {
        let rows = vec![
            row(100, 100, 1_000, 500, 40.0),
            row(200, 100, 2_000, 700, 41.5),
            row(350, 150, 0, 0, 39.0),
            row(450, 100, 500, 900, 44.25),
            row(550, 100, 750, 650, 43.0),
        ];
        let full = Timeline::from_rows(rows.clone());
        // A window strictly wider than the span takes the aggregate
        // path; one that merely touches the last row does not (to > last
        // is required).
        let span = (Nanos::ZERO, Nanos::from_secs(1));
        let edge = (Nanos::ZERO, Nanos::from_millis(550));
        assert!(full.covers_all(span.0, span.1));
        assert!(!full.covers_all(edge.0, edge.1));
        // Aggregate answers equal a hand-rolled row iteration bit for bit.
        let (mut joules, mut secs, mut completed) = (0.0, 0.0, 0u64);
        for r in &rows {
            let dt = r.interval.as_secs_f64();
            joules += r.power_w * dt;
            secs += dt;
            completed += r.completed;
        }
        assert_eq!(
            full.mean_power_w(span.0, span.1).unwrap().to_bits(),
            (joules / secs).to_bits()
        );
        assert_eq!(
            full.mean_throughput_pps(span.0, span.1).unwrap().to_bits(),
            (completed as f64 / secs).to_bits()
        );
        assert_eq!(full.energy_j().to_bits(), joules.to_bits());
    }

    /// Satellite regression: the streaming (`RowLog::Recent`) median
    /// reads the quantile sketch; it must agree with the exact
    /// (`RowLog::Full`) selection within the `Histogram`'s 1/32
    /// relative-error bucket resolution.
    #[test]
    fn streaming_median_tracks_exact_within_sketch_error() {
        let mut full = Timeline::new(RowLog::Full);
        let mut recent = Timeline::new(RowLog::Recent(8));
        // Odd number of nonzero rows, so the exact median is a pure
        // order statistic (no mid-pair averaging to blur the bound).
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for i in 0..1001u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let p50 = 1_000 + (state >> 40); // ~1 µs .. ~17 ms spread
            let r = row(100 * (i + 1), 100, 10, p50, 40.0);
            full.push(r);
            recent.push(r);
        }
        assert_eq!(recent.retained_rows(), 8 + (1001 % 8));
        assert_eq!(recent.total_rows(), 1001);
        let (from, to) = (Nanos::ZERO, Nanos::from_secs(1_000_000));
        let exact = full.median_latency_ns(from, to).unwrap();
        let sketch = recent.median_latency_ns(from, to).unwrap();
        // The sketch reports a bucket upper bound: never below the exact
        // median, never more than one 1/32 bucket above it.
        assert!(sketch >= exact, "sketch {sketch} < exact {exact}");
        assert!(
            sketch <= exact + exact / 32 + 1,
            "sketch {sketch} vs exact {exact}"
        );
        // The O(1) aggregates agree bit-for-bit across modes.
        assert_eq!(full.energy_j().to_bits(), recent.energy_j().to_bits());
        assert_eq!(
            full.mean_power_w(from, to).unwrap().to_bits(),
            recent.mean_power_w(from, to).unwrap().to_bits()
        );
        assert_eq!(
            full.mean_throughput_pps(from, to).unwrap().to_bits(),
            recent.mean_throughput_pps(from, to).unwrap().to_bits()
        );
    }
}
