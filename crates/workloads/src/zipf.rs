//! Zipf-distributed sampling.
//!
//! Key popularity in the Facebook ETC workload follows a power law
//! (Atikoglu et al., the paper's \[7\]). This sampler uses the
//! rejection-inversion method of Hörmann & Derflinger, which is O(1) per
//! sample with no precomputed tables, so it scales to the 10⁹-key
//! populations §5.3 discusses.

use inc_sim::Rng;

/// A Zipf(α) sampler over `{1, ..., n}`.
///
/// # Examples
///
/// ```
/// use inc_sim::Rng;
/// use inc_workloads::Zipf;
///
/// let mut rng = Rng::new(1);
/// let zipf = Zipf::new(1_000_000, 0.99).unwrap();
/// let x = zipf.sample(&mut rng);
/// assert!((1..=1_000_000).contains(&x));
/// ```
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    alpha: f64,
    // Precomputed constants of the rejection-inversion method.
    h_x1: f64,
    h_n: f64,
    s: f64,
}

impl Zipf {
    /// Creates a sampler over `{1..=n}` with exponent `alpha`.
    ///
    /// Returns `None` if `n` is zero or `alpha` is not finite and
    /// positive (use a tiny α such as 1e-9 for near-uniform).
    pub fn new(n: u64, alpha: f64) -> Option<Self> {
        if n == 0 || !alpha.is_finite() || alpha <= 0.0 || (alpha - 1.0).abs() < 1e-12 {
            // α exactly 1 hits a removable singularity in H; nudge it.
            if (alpha - 1.0).abs() < 1e-12 {
                return Zipf::new(n, 1.0 + 1e-9);
            }
            return None;
        }
        let h = |x: f64| -> f64 { (x.powf(1.0 - alpha) - 1.0) / (1.0 - alpha) };
        let h_x1 = h(1.5) - 1.0;
        let h_n = h(n as f64 + 0.5);
        let s = 2.0 - h_inv(h(2.5) - 2f64.powf(-alpha), alpha);
        Some(Zipf {
            n,
            alpha,
            h_x1,
            h_n,
            s,
        })
    }

    /// Draws one sample in `1..=n`.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        loop {
            let u = self.h_x1 + rng.f64() * (self.h_n - self.h_x1);
            let x = h_inv(u, self.alpha);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            let h_k = { ((k + 0.5).powf(1.0 - self.alpha) - 1.0) / (1.0 - self.alpha) };
            if k - x <= self.s || u >= h_k - k.powf(-self.alpha) {
                return k as u64;
            }
        }
    }

    /// The population size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The unnormalised popularity weight `k^(-α)` of rank `k` (rank 1 is
    /// the hottest). Useful for mapping a rank to a deterministic demand
    /// level — e.g. pricing tenant `k`'s offered rate as `peak ×
    /// popularity(k)` — without drawing samples. Returns 0.0 for rank 0
    /// or ranks beyond the population.
    ///
    /// # Examples
    ///
    /// ```
    /// use inc_workloads::Zipf;
    ///
    /// let z = Zipf::new(1000, 1.0).unwrap();
    /// assert_eq!(z.popularity(1), 1.0);
    /// // α is nudged off the k⁻¹ singularity, so compare loosely.
    /// assert!((z.popularity(2) - 0.5).abs() < 1e-6);
    /// assert_eq!(z.popularity(0), 0.0);
    /// assert_eq!(z.popularity(1001), 0.0);
    /// ```
    pub fn popularity(&self, k: u64) -> f64 {
        if k == 0 || k > self.n {
            return 0.0;
        }
        (k as f64).powf(-self.alpha)
    }
}

fn h_inv(x: f64, alpha: f64) -> f64 {
    (1.0 + x * (1.0 - alpha)).powf(1.0 / (1.0 - alpha))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(Zipf::new(0, 1.0).is_none());
        assert!(Zipf::new(10, f64::NAN).is_none());
        assert!(Zipf::new(10, -1.0).is_none());
        assert!(Zipf::new(10, 1.0).is_some()); // α = 1 is nudged, not rejected.
    }

    #[test]
    fn samples_in_range() {
        let mut rng = Rng::new(2);
        let z = Zipf::new(100, 0.8).unwrap();
        for _ in 0..10_000 {
            let x = z.sample(&mut rng);
            assert!((1..=100).contains(&x));
        }
    }

    #[test]
    fn rank_one_dominates() {
        let mut rng = Rng::new(3);
        let z = Zipf::new(1000, 1.2).unwrap();
        let n = 100_000;
        let ones = (0..n).filter(|_| z.sample(&mut rng) == 1).count();
        // For α=1.2, P(1) ≈ 1/ζ(1.2 over 1000 items) ≈ 0.27.
        let p1 = ones as f64 / n as f64;
        assert!((0.2..0.4).contains(&p1), "P(rank 1) = {p1}");
    }

    #[test]
    fn empirical_frequencies_follow_power_law() {
        let mut rng = Rng::new(4);
        let alpha = 0.99;
        let z = Zipf::new(10_000, alpha).unwrap();
        let n = 400_000;
        let mut counts = [0u64; 16];
        for _ in 0..n {
            let x = z.sample(&mut rng);
            if (x as usize) < counts.len() {
                counts[x as usize] += 1;
            }
        }
        // freq(k)/freq(2k) should be ~2^alpha.
        for k in [1usize, 2, 4] {
            let ratio = counts[k] as f64 / counts[2 * k] as f64;
            let expect = 2f64.powf(alpha);
            assert!(
                (ratio / expect - 1.0).abs() < 0.15,
                "k={k}: ratio {ratio} vs {expect}"
            );
        }
    }

    #[test]
    fn huge_population_is_cheap() {
        let mut rng = Rng::new(5);
        let z = Zipf::new(1_000_000_000, 0.9).unwrap();
        let mut max = 0;
        for _ in 0..10_000 {
            max = max.max(z.sample(&mut rng));
        }
        assert!(max > 1_000, "tail never sampled: max {max}");
        assert!(max <= 1_000_000_000);
    }
}
