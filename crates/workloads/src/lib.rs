//! Workload generation and trace analysis for the *in-network computing
//! on demand* reproduction.
//!
//! * [`OsntSource`] / [`RateProfile`] / [`PacketSink`] — the OSNT-style
//!   open-loop traffic source behind every §4 sweep.
//! * [`Zipf`] — O(1) Zipf sampling for key popularity.
//! * [`EtcWorkload`] — the Facebook ETC memcached mix used by Figure 6.
//! * [`GoogleTrace`] — synthesized Google cluster trace + the §9.3
//!   offload-candidate analysis.
//! * [`PowerTrace`] / [`variation`] — synthesized Dynamo power traces +
//!   the §9.3 power-variation gating rule.

pub mod dynamo;
pub mod etc;
pub mod google;
pub mod osnt;
pub mod zipf;

pub use dynamo::{suits_on_demand, variation, PowerTrace, PowerWalk, Variation, WorkloadClass};
pub use etc::{EtcOpKind, EtcSample, EtcWorkload};
pub use google::{GoogleTrace, Task};
pub use osnt::{OsntSource, PacketFactory, PacketSink, RateProfile};
pub use zipf::Zipf;
