//! Google cluster-trace synthesis and the §9.3 offload analysis.
//!
//! The paper mines the 2011 Google cluster trace for transient effects:
//! 90 % of resource utilisation comes from jobs longer than two hours
//! though they are only ~5 % of jobs; 1.39 M unique tasks use ≥ 10 % of a
//! core for ≥ 5 minutes (offload candidates); but the average node runs
//! 7.7 such cores' worth of tasks per 5-minute window, diluting the
//! saving. The real trace is not distributable here, so [`GoogleTrace`]
//! synthesizes tasks whose aggregates match the published statistics and
//! the same analysis code runs against it.

use inc_sim::{Nanos, Rng};

/// One synthesized task.
#[derive(Clone, Copy, Debug)]
pub struct Task {
    /// Start time.
    pub start: Nanos,
    /// Duration.
    pub duration: Nanos,
    /// Mean CPU usage in cores (normalized like the trace, 0..~4).
    pub cpu_cores: f64,
    /// Node the task is scheduled on.
    pub node: u32,
}

/// A synthesized cluster trace.
#[derive(Clone, Debug)]
pub struct GoogleTrace {
    /// All tasks.
    pub tasks: Vec<Task>,
    /// Number of nodes in the synthesized cluster.
    pub nodes: u32,
    /// Trace horizon.
    pub horizon: Nanos,
}

impl GoogleTrace {
    /// Synthesizes a trace over `nodes` nodes and `horizon`.
    ///
    /// The task mix is bimodal, as the published analysis requires:
    /// ~95 % short tasks (minutes, small CPU) and ~5 % long tasks
    /// (> 2 h, larger CPU), with the long tail carrying ~90 % of the
    /// core-seconds.
    pub fn synthesize(rng: &mut Rng, nodes: u32, horizon: Nanos, tasks_per_node: usize) -> Self {
        let mut tasks = Vec::with_capacity(nodes as usize * tasks_per_node);
        for node in 0..nodes {
            for _ in 0..tasks_per_node {
                let long = rng.chance(0.05);
                let (duration, cpu) = if long {
                    // Long jobs: 2-20 h, 0.3-2 cores.
                    let hours = 2.0 + rng.exp(4.0).min(18.0);
                    let cpu = 0.3 + rng.f64() * 1.7;
                    (Nanos::from_secs_f64(hours * 3600.0), cpu)
                } else {
                    // Short jobs: 1 - 30 min, light-to-moderate CPU,
                    // weighted so long jobs carry ~90 % of core-seconds.
                    let mins = 1.0 + rng.exp(5.5).min(29.0);
                    let cpu = 0.05 + rng.f64() * 0.45;
                    (Nanos::from_secs_f64(mins * 60.0), cpu)
                };
                let latest_start = horizon.saturating_sub(duration);
                let start = if latest_start == Nanos::ZERO {
                    Nanos::ZERO
                } else {
                    Nanos::from_nanos(rng.range_u64(0, latest_start.as_nanos()))
                };
                tasks.push(Task {
                    start,
                    duration,
                    cpu_cores: cpu,
                    node,
                });
            }
        }
        GoogleTrace {
            tasks,
            nodes,
            horizon,
        }
    }

    /// Total core-seconds in the trace.
    pub fn total_core_seconds(&self) -> f64 {
        self.tasks
            .iter()
            .map(|t| t.cpu_cores * t.duration.as_secs_f64())
            .sum()
    }

    /// Fraction of core-seconds contributed by tasks longer than `cut`.
    pub fn utilization_share_of_long_tasks(&self, cut: Nanos) -> f64 {
        let long: f64 = self
            .tasks
            .iter()
            .filter(|t| t.duration > cut)
            .map(|t| t.cpu_cores * t.duration.as_secs_f64())
            .sum();
        long / self.total_core_seconds()
    }

    /// Fraction of *tasks* longer than `cut`.
    pub fn task_share_longer_than(&self, cut: Nanos) -> f64 {
        let n = self.tasks.iter().filter(|t| t.duration > cut).count();
        n as f64 / self.tasks.len() as f64
    }

    /// §9.3 offload candidates: tasks using at least `min_cores` of a core
    /// for at least `min_duration`.
    pub fn offload_candidates(&self, min_cores: f64, min_duration: Nanos) -> Vec<&Task> {
        self.offload_candidates_iter(min_cores, min_duration)
            .collect()
    }

    /// Streaming twin of [`GoogleTrace::offload_candidates`]: yields the
    /// qualifying tasks without materialising a `Vec` per query (the
    /// per-request path of heavy-traffic replays scans candidates every
    /// interval).
    pub fn offload_candidates_iter(
        &self,
        min_cores: f64,
        min_duration: Nanos,
    ) -> impl Iterator<Item = &Task> {
        self.tasks
            .iter()
            .filter(move |t| t.cpu_cores >= min_cores && t.duration >= min_duration)
    }

    /// §9.3 dilution metric: the average, over 5-minute windows and nodes,
    /// of candidate cores running concurrently on a node.
    pub fn mean_candidate_cores_per_node(&self, min_cores: f64, min_duration: Nanos) -> f64 {
        let window = Nanos::from_secs(300);
        let windows = (self.horizon.as_nanos() / window.as_nanos()).max(1);
        let mut total = 0.0;
        for t in self.offload_candidates_iter(min_cores, min_duration) {
            // A task contributes its CPU to every window it overlaps.
            let first = t.start.as_nanos() / window.as_nanos();
            let last = (t.start + t.duration).as_nanos() / window.as_nanos();
            let overlapped = (last - first + 1).min(windows);
            total += t.cpu_cores * overlapped as f64;
        }
        total / (windows as f64 * self.nodes as f64)
    }
}

/// The §9.3 alternative usage model: offload **as load diminishes**.
///
/// "When a multitude of jobs run on the same server, offloading to the
/// network saves little power. However, as jobs end or are migrated from
/// the server, moving the last (or first) job to the network will save
/// power." This analysis walks a node's timeline and finds the windows
/// where at most `max_resident` candidate jobs remain — the moments where
/// shifting the remaining job(s) into the device lets the host reach idle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DrainWindow {
    /// Node concerned.
    pub node: u32,
    /// Start of the low-occupancy window.
    pub from: Nanos,
    /// End of the window.
    pub to: Nanos,
    /// Host watts saved by offloading the stragglers and idling the host
    /// (the §7 uncore jump is the prize: the last job pins it).
    pub saving_w: f64,
}

impl GoogleTrace {
    /// Finds, per node, the 5-minute windows where at most `max_resident`
    /// offload-candidate jobs are running, and estimates the §9.3 saving
    /// of moving them to the network: the host drops its uncore-activation
    /// power (`uncore_jump_w`) plus the jobs' dynamic share.
    pub fn drain_windows(
        &self,
        min_cores: f64,
        min_duration: Nanos,
        max_resident: usize,
        uncore_jump_w: f64,
        per_core_w: f64,
    ) -> Vec<DrainWindow> {
        let window = Nanos::from_secs(300);
        let windows = (self.horizon.as_nanos() / window.as_nanos()).max(1) as usize;
        // Occupancy per (node, window): count + cores of candidate tasks.
        let mut occupancy = vec![(0usize, 0.0f64); windows * self.nodes as usize];
        for t in self.offload_candidates_iter(min_cores, min_duration) {
            let first = (t.start.as_nanos() / window.as_nanos()) as usize;
            let last = ((t.start + t.duration).as_nanos() / window.as_nanos()) as usize;
            for w in first..=last.min(windows - 1) {
                let slot = &mut occupancy[t.node as usize * windows + w];
                slot.0 += 1;
                slot.1 += t.cpu_cores;
            }
        }
        let mut out = Vec::new();
        for node in 0..self.nodes {
            let base = node as usize * windows;
            let mut w = 0;
            while w < windows {
                let (count, cores) = occupancy[base + w];
                if count > 0 && count <= max_resident {
                    // Extend the window while the condition holds.
                    let start = w;
                    let mut total_cores = 0.0;
                    while w < windows {
                        let (c, k) = occupancy[base + w];
                        if c == 0 || c > max_resident {
                            break;
                        }
                        total_cores += k;
                        w += 1;
                    }
                    let span = w - start;
                    let mean_cores = total_cores / span as f64;
                    out.push(DrainWindow {
                        node,
                        from: window.mul(start as u64),
                        to: window.mul(w as u64),
                        saving_w: uncore_jump_w + per_core_w * mean_cores,
                    });
                    let _ = cores;
                } else {
                    w += 1;
                }
            }
        }
        out
    }
}

/// The published §9.3 reference numbers, for the regeneration harness.
pub mod reference {
    /// Offload candidates in the full trace ("more than 1.39 million
    /// unique tasks").
    pub const OFFLOAD_CANDIDATE_TASKS: u64 = 1_390_000;
    /// Mean candidate (normalized) cores per node per 5-minute sample.
    pub const CANDIDATE_CORES_PER_NODE: f64 = 7.7;
    /// Share of resource utilisation in jobs longer than two hours.
    pub const LONG_JOB_UTILIZATION_SHARE: f64 = 0.90;
    /// Share of jobs that are that long.
    pub const LONG_JOB_COUNT_SHARE: f64 = 0.05;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> GoogleTrace {
        // 500 tasks/node/day puts the candidate density in the published
        // regime (~7.7 candidate cores per node per 5-minute window).
        let mut rng = Rng::new(42);
        GoogleTrace::synthesize(&mut rng, 100, Nanos::from_secs(24 * 3600), 500)
    }

    #[test]
    fn long_jobs_dominate_utilization() {
        let t = trace();
        let cut = Nanos::from_secs(2 * 3600);
        let share = t.utilization_share_of_long_tasks(cut);
        // §9.3: "90% of resource utilization is by jobs longer than two
        // hours, though these jobs represent only 5% of the total".
        assert!((0.80..0.97).contains(&share), "utilization share {share}");
        let count_share = t.task_share_longer_than(cut);
        assert!(
            (0.02..0.09).contains(&count_share),
            "count share {count_share}"
        );
    }

    #[test]
    fn candidates_exist_and_dilute() {
        let t = trace();
        let min = Nanos::from_secs(300);
        let candidates = t.offload_candidates(0.10, min);
        assert!(!candidates.is_empty());
        let per_node = t.mean_candidate_cores_per_node(0.10, min);
        // The dilution effect: several candidate cores per node at once,
        // same order as the published 7.7.
        assert!((2.0..20.0).contains(&per_node), "per node {per_node}");
    }

    #[test]
    fn candidate_filter_respects_thresholds() {
        let t = trace();
        let all = t.tasks.len();
        let some = t.offload_candidates(0.10, Nanos::from_secs(300)).len();
        let fewer = t.offload_candidates(0.50, Nanos::from_secs(3600)).len();
        assert!(some < all);
        assert!(fewer < some);
    }

    #[test]
    fn drain_windows_identify_low_occupancy_periods() {
        let t = trace();
        // Generous residency bound: some windows must qualify.
        let windows = t.drain_windows(0.10, Nanos::from_secs(300), 2, 15.6, 13.9);
        assert!(!windows.is_empty(), "no drain windows found");
        for w in &windows {
            assert!(w.to > w.from);
            assert!(w.node < t.nodes);
            // Saving always includes the uncore jump the last job pins.
            assert!(w.saving_w >= 15.6);
        }
        // Tightening the bound to 1 resident job yields fewer, not more.
        let tighter = t.drain_windows(0.10, Nanos::from_secs(300), 1, 15.6, 13.9);
        assert!(tighter.len() <= windows.len());
    }

    #[test]
    fn synthesis_is_deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        let ta = GoogleTrace::synthesize(&mut a, 10, Nanos::from_secs(3600), 20);
        let tb = GoogleTrace::synthesize(&mut b, 10, Nanos::from_secs(3600), 20);
        assert_eq!(ta.tasks.len(), tb.tasks.len());
        assert_eq!(ta.total_core_seconds(), tb.total_core_seconds());
    }
}
