//! The Facebook "ETC" memcached workload (Atikoglu et al., the paper's
//! \[7\]), used by the Figure 6 on-demand experiment via a mutilate-style
//! client.
//!
//! The published characteristics reproduced here:
//!
//! * GET-dominated mix (ETC is ~30:1 GET:SET);
//! * short keys (16–40 B, mean ≈ 30 B) and small values (median ≈ a few
//!   hundred bytes with a heavy tail);
//! * Zipf-like key popularity (a small fraction of keys takes most hits:
//!   §5.3 cites 3–35 % of unique keys requested per hour).

use inc_kvs::{KvOp, OpGen};
use inc_sim::Rng;

use crate::zipf::Zipf;

/// The ETC workload generator.
#[derive(Clone, Debug)]
pub struct EtcWorkload {
    /// Distinct keys in the population.
    pub keys: u64,
    /// Fraction of GET operations.
    pub get_ratio: f64,
    zipf: Zipf,
}

impl EtcWorkload {
    /// Creates the standard ETC mix over `keys` keys.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is zero.
    pub fn new(keys: u64) -> Self {
        EtcWorkload {
            keys,
            get_ratio: 0.97,
            zipf: Zipf::new(keys, 0.99).expect("keys > 0"),
        }
    }

    /// Key name for rank `r` (rank 1 = hottest).
    pub fn key_for_rank(r: u64) -> Vec<u8> {
        let mut key = [0u8; Self::KEY_LEN];
        Self::key_for_rank_into(r, &mut key);
        key.to_vec()
    }

    /// Length of every generated key: `"etc:"` + 16 hex digits.
    pub const KEY_LEN: usize = 20;

    /// Writes the key for rank `r` into a caller-owned buffer — the
    /// allocation-free twin of [`EtcWorkload::key_for_rank`], for
    /// per-request hot paths that reuse one buffer across samples.
    pub fn key_for_rank_into(r: u64, key: &mut [u8; Self::KEY_LEN]) {
        // Spread ranks over the namespace so adjacent ranks do not share
        // cache lines/buckets artificially.
        let spread = r.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        key[..4].copy_from_slice(b"etc:");
        for (i, b) in key[4..].iter_mut().enumerate() {
            let nibble = ((spread >> (60 - 4 * i)) & 0xf) as u8;
            *b = match nibble {
                0..=9 => b'0' + nibble,
                _ => b'a' + (nibble - 10),
            };
        }
    }

    /// Samples an ETC value size in bytes.
    ///
    /// Mixture fit to the published CDF: a spike of tiny values, a
    /// lognormal body with a median of a few hundred bytes, and a bounded
    /// heavy tail.
    pub fn value_size(rng: &mut Rng) -> usize {
        let u = rng.f64();
        if u < 0.08 {
            // Tiny values (counters): 1-13 B.
            1 + rng.index(13)
        } else if u < 0.90 {
            // Lognormal body, median ~270 B.
            let v = rng.log_normal(5.6, 0.75);
            (v as usize).clamp(14, 4_000)
        } else {
            // Pareto-ish tail. The published distribution reaches ~1 MB,
            // but those values travel over TCP in production; this UDP
            // reproduction caps the tail at a single-datagram size.
            let p = rng.f64().max(1e-9);
            let v = 4_000.0 * p.powf(-0.7);
            (v as usize).min(8_000)
        }
    }

    /// Draws one request without allocating: the key is identified by
    /// rank (render it on demand with
    /// [`EtcWorkload::key_for_rank_into`]), the value by its size.
    ///
    /// This is the per-request hot path for heavy-traffic replays; the
    /// [`OpGen`] impl wraps it and materialises the key bytes.
    pub fn next_sample(&mut self, rng: &mut Rng) -> EtcSample {
        let rank = self.zipf.sample(rng);
        if rng.chance(self.get_ratio) {
            EtcSample {
                rank,
                kind: EtcOpKind::Get,
                value_len: 0,
            }
        } else {
            EtcSample {
                rank,
                kind: EtcOpKind::Set,
                value_len: Self::value_size(rng),
            }
        }
    }
}

/// Operation kind of an [`EtcSample`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EtcOpKind {
    /// A GET (the dominant ETC operation).
    Get,
    /// A SET carrying `value_len` bytes.
    Set,
}

/// One sampled ETC request, `Copy` and allocation-free.
#[derive(Clone, Copy, Debug)]
pub struct EtcSample {
    /// Popularity rank of the key (1 = hottest).
    pub rank: u64,
    /// GET or SET.
    pub kind: EtcOpKind,
    /// Value size in bytes (0 for GETs).
    pub value_len: usize,
}

impl OpGen for EtcWorkload {
    fn next_op(&mut self, rng: &mut Rng) -> KvOp {
        let s = self.next_sample(rng);
        let key = Self::key_for_rank(s.rank);
        match s.kind {
            EtcOpKind::Get => KvOp::Get(key),
            EtcOpKind::Set => KvOp::Set(key, s.value_len),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_get_dominated() {
        let mut w = EtcWorkload::new(10_000);
        let mut rng = Rng::new(1);
        let n = 50_000;
        let gets = (0..n)
            .filter(|_| matches!(w.next_op(&mut rng), KvOp::Get(_)))
            .count();
        let ratio = gets as f64 / n as f64;
        assert!((ratio - 0.97).abs() < 0.01, "{ratio}");
    }

    #[test]
    fn popularity_is_skewed() {
        let mut w = EtcWorkload::new(100_000);
        let mut rng = Rng::new(2);
        let mut seen = std::collections::HashMap::new();
        let n = 100_000;
        for _ in 0..n {
            if let KvOp::Get(k) | KvOp::Set(k, _) = w.next_op(&mut rng) {
                *seen.entry(k).or_insert(0u64) += 1;
            }
        }
        // A Zipf(0.99) over 100k keys: the hottest key alone takes ~8 % of
        // traffic; the unique set is a small fraction of requests.
        let max = *seen.values().max().unwrap();
        assert!(max as f64 / n as f64 > 0.04, "hottest {max}");
        assert!(seen.len() < n / 2, "unique {} of {n}", seen.len());
    }

    #[test]
    fn value_sizes_have_documented_shape() {
        let mut rng = Rng::new(3);
        let mut sizes: Vec<usize> = (0..100_000)
            .map(|_| EtcWorkload::value_size(&mut rng))
            .collect();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2];
        let p99 = sizes[sizes.len() * 99 / 100];
        assert!((100..600).contains(&median), "median {median}");
        assert!(p99 > 2_000, "p99 {p99}");
        assert!(*sizes.last().unwrap() <= 8_000);
        assert!(*sizes.first().unwrap() >= 1);
    }

    #[test]
    fn keys_are_stable_per_rank() {
        assert_eq!(EtcWorkload::key_for_rank(5), EtcWorkload::key_for_rank(5));
        assert_ne!(EtcWorkload::key_for_rank(5), EtcWorkload::key_for_rank(6));
    }

    #[test]
    fn key_for_rank_into_matches_formatted_key() {
        for r in [0u64, 1, 5, 1 << 40, u64::MAX] {
            let spread = r.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let formatted = format!("etc:{spread:016x}").into_bytes();
            let mut buf = [0u8; EtcWorkload::KEY_LEN];
            EtcWorkload::key_for_rank_into(r, &mut buf);
            assert_eq!(buf.as_slice(), formatted.as_slice(), "rank {r}");
            assert_eq!(EtcWorkload::key_for_rank(r), formatted);
        }
    }

    #[test]
    fn next_sample_matches_next_op_draw_for_draw() {
        let mut w_op = EtcWorkload::new(10_000);
        let mut w_sample = w_op.clone();
        let mut rng_op = Rng::new(7);
        let mut rng_sample = Rng::new(7);
        for _ in 0..10_000 {
            let op = w_op.next_op(&mut rng_op);
            let s = w_sample.next_sample(&mut rng_sample);
            match (op, s.kind) {
                (KvOp::Get(k), EtcOpKind::Get) => {
                    assert_eq!(k, EtcWorkload::key_for_rank(s.rank));
                }
                (KvOp::Set(k, len), EtcOpKind::Set) => {
                    assert_eq!(k, EtcWorkload::key_for_rank(s.rank));
                    assert_eq!(len, s.value_len);
                }
                (op, kind) => panic!("diverged: {op:?} vs {kind:?}"),
            }
        }
    }
}
