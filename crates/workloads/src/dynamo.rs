//! Facebook Dynamo power-trace synthesis and the §9.3 variation analysis.
//!
//! Dynamo (Wu et al., ISCA'16) reports rack-level power variation
//! percentiles that the paper uses to judge when on-demand shifting is
//! safe: 12.8 % p99 over 3 s and 26.6 % over 30 s at rack level (median
//! < 5 %); caching workloads vary 9.2 % median / 26.2 % p99 over 60 s;
//! web servers 37.2 % / 62.2 %. [`PowerTrace`] synthesizes per-class
//! traces with matching statistics; [`variation`] computes the same
//! percentile metric the paper applies.

use inc_sim::{Nanos, Rng, TimeSeries};

/// Workload classes with published Dynamo variation characteristics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// Rack-level aggregate.
    Rack,
    /// Caching tier (one of the paper's case-study applications).
    Cache,
    /// Web serving tier.
    WebServer,
    /// Batch/Hadoop-style tier.
    Batch,
}

impl WorkloadClass {
    /// Per-step multiplicative noise scale calibrated so the synthesized
    /// traces land on the published variation percentiles.
    fn step_sigma(self) -> f64 {
        match self {
            WorkloadClass::Rack => 0.029,
            WorkloadClass::Cache => 0.022,
            WorkloadClass::WebServer => 0.16,
            WorkloadClass::Batch => 0.08,
        }
    }

    /// Mean power level of the synthesized trace, watts.
    fn mean_w(self) -> f64 {
        match self {
            WorkloadClass::Rack => 8_000.0,
            WorkloadClass::Cache => 90.0,
            WorkloadClass::WebServer => 120.0,
            WorkloadClass::Batch => 150.0,
        }
    }
}

/// A synthesized power-over-time trace.
#[derive(Clone, Debug)]
pub struct PowerTrace {
    /// The samples (1 s cadence, like Dynamo's collection).
    pub series: TimeSeries,
    /// The class it models.
    pub class: WorkloadClass,
}

impl PowerTrace {
    /// Synthesizes `seconds` of 1 Hz samples for a workload class using a
    /// mean-reverting multiplicative random walk.
    pub fn synthesize(rng: &mut Rng, class: WorkloadClass, seconds: u64) -> Self {
        let mut walk = PowerWalk::new(class);
        let mut series = TimeSeries::new();
        for s in 0..seconds {
            let level = walk.next_w(rng);
            series.push(Nanos::from_secs(s), level);
        }
        PowerTrace { series, class }
    }
}

/// The [`PowerTrace`] random walk as a streaming generator: one watt
/// sample per call, no per-sample allocation and no materialised
/// [`TimeSeries`] — the per-request path for heavy-traffic replays that
/// only need the instantaneous level. [`PowerTrace::synthesize`] is this
/// walk collected into a series (same draws, same levels).
#[derive(Clone, Copy, Debug)]
pub struct PowerWalk {
    class: WorkloadClass,
    level: f64,
    mean: f64,
    sigma: f64,
}

impl PowerWalk {
    /// A walk starting at the class mean.
    pub fn new(class: WorkloadClass) -> Self {
        let mean = class.mean_w();
        PowerWalk {
            class,
            level: mean,
            mean,
            sigma: class.step_sigma(),
        }
    }

    /// The class this walk models.
    pub fn class(&self) -> WorkloadClass {
        self.class
    }

    /// The class mean, watts.
    pub fn mean_w(&self) -> f64 {
        self.mean
    }

    /// Advances one 1 Hz step and returns the new power level, watts.
    pub fn next_w(&mut self, rng: &mut Rng) -> f64 {
        let noise = rng.normal(0.0, self.sigma);
        // Mean reversion keeps the trace stationary.
        self.level += (self.mean - self.level) * 0.05 + self.mean * noise;
        self.level = self.level.clamp(self.mean * 0.3, self.mean * 2.0);
        self.level
    }
}

/// Power-variation percentiles over a window: the §9.3 metric
/// `|P(t+w) − P(t)| / P(t)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Variation {
    /// Median relative variation.
    pub median: f64,
    /// 99th percentile relative variation.
    pub p99: f64,
}

/// Computes variation percentiles of a 1 Hz power trace over `window`.
///
/// Returns `None` when the trace is shorter than the window.
pub fn variation(series: &TimeSeries, window: Nanos) -> Option<Variation> {
    let pts = series.points();
    let step = window.as_nanos() / 1_000_000_000;
    if step == 0 || pts.len() <= step as usize {
        return None;
    }
    let step = step as usize;
    let mut deltas: Vec<f64> = pts
        .windows(step + 1)
        .map(|w| {
            let (a, b) = (w[0].1, w[step].1);
            (b - a).abs() / a.max(1e-9)
        })
        .collect();
    deltas.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let q = |f: f64| deltas[((deltas.len() - 1) as f64 * f) as usize];
    Some(Variation {
        median: q(0.5),
        p99: q(0.99),
    })
}

/// The paper's rule: on-demand shifting is appropriate when power variance
/// over the scheduling period is low (§9.3). The threshold is the rack
/// p99 over 30 s the paper quotes (26.6 %).
pub fn suits_on_demand(v: Variation) -> bool {
    v.p99 <= 0.30
}

/// The published §9.3/Dynamo reference numbers for the harness.
pub mod reference {
    /// Rack-level p99 variation over 3 s.
    pub const RACK_P99_3S: f64 = 0.128;
    /// Rack-level p99 variation over 30 s.
    pub const RACK_P99_30S: f64 = 0.266;
    /// Rack-level median variation.
    pub const RACK_MEDIAN: f64 = 0.05;
    /// Cache median / p99 over 60 s.
    pub const CACHE_60S: (f64, f64) = (0.092, 0.262);
    /// Web server median / p99 over 60 s.
    pub const WEB_60S: (f64, f64) = (0.372, 0.622);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(class: WorkloadClass) -> PowerTrace {
        let mut rng = Rng::new(99);
        PowerTrace::synthesize(&mut rng, class, 4_000)
    }

    #[test]
    fn rack_variation_matches_published_band() {
        let t = trace(WorkloadClass::Rack);
        let v3 = variation(&t.series, Nanos::from_secs(3)).unwrap();
        let v30 = variation(&t.series, Nanos::from_secs(30)).unwrap();
        // §9.3: 12.8 % p99 over 3 s, 26.6 % over 30 s, median < 5 %.
        assert!((0.09..0.18).contains(&v3.p99), "p99@3s {}", v3.p99);
        assert!((0.18..0.36).contains(&v30.p99), "p99@30s {}", v30.p99);
        assert!(v3.median < 0.05, "median {}", v3.median);
    }

    #[test]
    fn cache_is_calmer_than_web() {
        let cache = trace(WorkloadClass::Cache);
        let web = trace(WorkloadClass::WebServer);
        let w = Nanos::from_secs(60);
        let vc = variation(&cache.series, w).unwrap();
        let vw = variation(&web.series, w).unwrap();
        assert!(vc.median < vw.median);
        assert!(vc.p99 < vw.p99);
        // §9.3: cache ~9.2 % median / 26.2 % p99; web 37.2 % / 62.2 %.
        assert!(
            (0.04..0.16).contains(&vc.median),
            "cache median {}",
            vc.median
        );
        assert!((0.2..0.6).contains(&vw.median), "web median {}", vw.median);
    }

    #[test]
    fn suitability_rule_separates_classes() {
        let cache = trace(WorkloadClass::Cache);
        let web = trace(WorkloadClass::WebServer);
        let w = Nanos::from_secs(30);
        assert!(suits_on_demand(variation(&cache.series, w).unwrap()));
        assert!(!suits_on_demand(variation(&web.series, w).unwrap()));
    }

    #[test]
    fn short_trace_returns_none() {
        let mut rng = Rng::new(1);
        let t = PowerTrace::synthesize(&mut rng, WorkloadClass::Rack, 5);
        assert!(variation(&t.series, Nanos::from_secs(30)).is_none());
    }
}
