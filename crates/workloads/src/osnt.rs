//! OSNT-style open-loop traffic generation (§4.1).
//!
//! The paper drives every power/throughput sweep with OSNT, an open-source
//! tester that "control[s] data rates at very fine granularities and
//! reproduce[s] results". [`OsntSource`] emits caller-built packets at a
//! precisely paced rate that can follow a [`RateProfile`] over time.

use inc_net::Packet;
use inc_sim::{impl_node_any, Ctx, Nanos, Node, PortId, Rng, Timer};

/// A piecewise-constant offered-rate schedule.
///
/// # Examples
///
/// ```
/// use inc_sim::Nanos;
/// use inc_workloads::RateProfile;
///
/// let p = RateProfile::steps(vec![
///     (Nanos::ZERO, 1_000.0),
///     (Nanos::from_secs(10), 50_000.0),
/// ]);
/// assert_eq!(p.rate_at(Nanos::from_secs(5)), 1_000.0);
/// assert_eq!(p.rate_at(Nanos::from_secs(12)), 50_000.0);
/// ```
#[derive(Clone, Debug)]
pub struct RateProfile {
    /// (start time, rate in packets/second), sorted by time.
    steps: Vec<(Nanos, f64)>,
}

impl RateProfile {
    /// A constant rate forever.
    pub fn constant(rate_pps: f64) -> Self {
        RateProfile {
            steps: vec![(Nanos::ZERO, rate_pps)],
        }
    }

    /// A schedule of `(start, rate)` steps.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty or not sorted by time.
    pub fn steps(steps: Vec<(Nanos, f64)>) -> Self {
        assert!(!steps.is_empty());
        assert!(
            steps.windows(2).all(|w| w[0].0 <= w[1].0),
            "steps must be time-sorted"
        );
        RateProfile { steps }
    }

    /// A linear ramp approximated by `n` steps.
    pub fn ramp(from_pps: f64, to_pps: f64, start: Nanos, duration: Nanos, n: usize) -> Self {
        let n = n.max(1);
        let steps = (0..n)
            .map(|i| {
                let f = i as f64 / n as f64;
                (
                    start + duration.mul_f64(f),
                    from_pps + (to_pps - from_pps) * f,
                )
            })
            .collect();
        RateProfile { steps }
    }

    /// The rate in effect at time `t`.
    pub fn rate_at(&self, t: Nanos) -> f64 {
        let idx = self.steps.partition_point(|&(s, _)| s <= t);
        if idx == 0 {
            0.0
        } else {
            self.steps[idx - 1].1
        }
    }
}

/// Builds the next packet to emit; `seq` counts emitted packets.
pub type PacketFactory = Box<dyn FnMut(&mut Rng, u64) -> Packet>;

const TAG_SEND: u64 = 1;

/// An open-loop paced packet source.
pub struct OsntSource {
    profile: RateProfile,
    factory: PacketFactory,
    sent: u64,
    stopped: bool,
}

impl OsntSource {
    /// Creates a source following `profile`, emitting packets from
    /// `factory` on port 0.
    pub fn new(profile: RateProfile, factory: PacketFactory) -> Self {
        OsntSource {
            profile,
            factory,
            sent: 0,
            stopped: false,
        }
    }

    /// Packets emitted so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Replaces the rate profile (takes effect at the next send tick).
    pub fn set_profile(&mut self, profile: RateProfile) {
        self.profile = profile;
    }

    /// Stops the source permanently.
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    fn schedule(&mut self, ctx: &mut Ctx<'_, Packet>) {
        if self.stopped {
            return;
        }
        let rate = self.profile.rate_at(ctx.now());
        let delay = if rate > 0.0 {
            Nanos::from_secs_f64(1.0 / rate)
        } else {
            Nanos::from_millis(1)
        };
        ctx.schedule_in(delay, TAG_SEND);
    }
}

impl Node<Packet> for OsntSource {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Packet>) {
        self.schedule(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Packet>, timer: Timer) {
        if timer.tag != TAG_SEND || self.stopped {
            return;
        }
        if self.profile.rate_at(ctx.now()) > 0.0 {
            let mut pkt = (self.factory)(ctx.rng(), self.sent);
            pkt.sent_at = ctx.now();
            pkt.id = self.sent;
            self.sent += 1;
            ctx.send(PortId::P0, pkt);
        }
        self.schedule(ctx);
    }

    fn label(&self) -> String {
        "osnt".to_string()
    }

    impl_node_any!();
}

/// A packet sink that counts and optionally tracks latency from
/// `sent_at` stamps (the Endace DAG role in §4.1).
#[derive(Default)]
pub struct PacketSink {
    /// Packets received.
    pub received: u64,
    /// Latency histogram from source timestamps.
    pub latency: inc_sim::Histogram,
}

impl Node<Packet> for PacketSink {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Packet>, _port: PortId, msg: Packet) {
        self.received += 1;
        self.latency.record_nanos(ctx.now() - msg.sent_at);
    }

    fn label(&self) -> String {
        "sink".to_string()
    }

    impl_node_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use inc_net::{build_udp, Endpoint};
    use inc_sim::{LinkSpec, Simulator};

    fn factory() -> PacketFactory {
        Box::new(|_rng, seq| {
            build_udp(
                Endpoint::host(1, 1000),
                Endpoint::host(2, 2000),
                &seq.to_be_bytes(),
            )
        })
    }

    #[test]
    fn constant_rate_is_precise() {
        let mut sim = Simulator::new(0);
        let src = sim.add_node(OsntSource::new(RateProfile::constant(10_000.0), factory()));
        let dst = sim.add_node(PacketSink::default());
        sim.connect(src, PortId::P0, dst, PortId::P0, LinkSpec::ideal());
        sim.run_until(Nanos::from_secs(1));
        let got = sim.node_ref::<PacketSink>(dst).received;
        assert!((9_990..=10_010).contains(&got), "{got}");
    }

    #[test]
    fn profile_steps_change_rate() {
        let mut sim = Simulator::new(0);
        let profile = RateProfile::steps(vec![
            (Nanos::ZERO, 1_000.0),
            (Nanos::from_millis(500), 100_000.0),
        ]);
        let src = sim.add_node(OsntSource::new(profile, factory()));
        let dst = sim.add_node(PacketSink::default());
        sim.connect(src, PortId::P0, dst, PortId::P0, LinkSpec::ideal());
        sim.run_until(Nanos::from_millis(500));
        let at_switch = sim.node_ref::<PacketSink>(dst).received;
        sim.run_until(Nanos::from_secs(1));
        let total = sim.node_ref::<PacketSink>(dst).received;
        assert!((495..=505).contains(&at_switch), "{at_switch}");
        assert!(
            (49_000..=51_000).contains(&(total - at_switch)),
            "{}",
            total - at_switch
        );
    }

    #[test]
    fn ramp_rate_monotone() {
        let p = RateProfile::ramp(0.0, 1_000.0, Nanos::ZERO, Nanos::from_secs(10), 10);
        assert!(p.rate_at(Nanos::from_secs(1)) < p.rate_at(Nanos::from_secs(9)));
        assert_eq!(p.rate_at(Nanos::from_secs(20)), 900.0);
    }

    #[test]
    fn zero_rate_emits_nothing_until_step() {
        let mut sim = Simulator::new(0);
        let profile = RateProfile::steps(vec![
            (Nanos::ZERO, 0.0),
            (Nanos::from_millis(100), 10_000.0),
        ]);
        let src = sim.add_node(OsntSource::new(profile, factory()));
        let dst = sim.add_node(PacketSink::default());
        sim.connect(src, PortId::P0, dst, PortId::P0, LinkSpec::ideal());
        sim.run_until(Nanos::from_millis(99));
        assert_eq!(sim.node_ref::<PacketSink>(dst).received, 0);
        sim.run_until(Nanos::from_millis(200));
        assert!(sim.node_ref::<PacketSink>(dst).received > 900);
    }

    #[test]
    fn stop_halts_emission() {
        let mut sim = Simulator::new(0);
        let src = sim.add_node(OsntSource::new(RateProfile::constant(10_000.0), factory()));
        let dst = sim.add_node(PacketSink::default());
        sim.connect(src, PortId::P0, dst, PortId::P0, LinkSpec::ideal());
        sim.run_until(Nanos::from_millis(100));
        sim.node_mut::<OsntSource>(src).stop();
        let before = sim.node_ref::<PacketSink>(dst).received;
        sim.run_until(Nanos::from_millis(200));
        assert_eq!(sim.node_ref::<PacketSink>(dst).received, before);
    }
}
