//! OSNT-style open-loop traffic generation (§4.1).
//!
//! The paper drives every power/throughput sweep with OSNT, an open-source
//! tester that "control\[s\] data rates at very fine granularities and
//! reproduce\[s\] results". [`OsntSource`] emits caller-built packets at a
//! precisely paced rate that can follow a [`RateProfile`] over time.

use inc_net::Packet;
use inc_sim::{impl_node_any, Ctx, Nanos, Node, PortId, Rng, Timer};

/// A piecewise-constant offered-rate schedule.
///
/// # Examples
///
/// ```
/// use inc_sim::Nanos;
/// use inc_workloads::RateProfile;
///
/// let p = RateProfile::steps(vec![
///     (Nanos::ZERO, 1_000.0),
///     (Nanos::from_secs(10), 50_000.0),
/// ]);
/// assert_eq!(p.rate_at(Nanos::from_secs(5)), 1_000.0);
/// assert_eq!(p.rate_at(Nanos::from_secs(12)), 50_000.0);
/// ```
#[derive(Clone, Debug)]
pub struct RateProfile {
    /// (start time, rate in packets/second), sorted by time.
    steps: Vec<(Nanos, f64)>,
    /// When set, the schedule repeats with this period.
    period: Option<Nanos>,
}

impl RateProfile {
    /// A constant rate forever.
    pub fn constant(rate_pps: f64) -> Self {
        RateProfile {
            steps: vec![(Nanos::ZERO, rate_pps)],
            period: None,
        }
    }

    /// A schedule of `(start, rate)` steps.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty or not sorted by time.
    pub fn steps(steps: Vec<(Nanos, f64)>) -> Self {
        assert!(!steps.is_empty());
        assert!(
            steps.windows(2).all(|w| w[0].0 <= w[1].0),
            "steps must be time-sorted"
        );
        RateProfile {
            steps,
            period: None,
        }
    }

    /// A linear ramp approximated by `n` steps.
    pub fn ramp(from_pps: f64, to_pps: f64, start: Nanos, duration: Nanos, n: usize) -> Self {
        let n = n.max(1);
        let steps = (0..n)
            .map(|i| {
                let f = i as f64 / n as f64;
                (
                    start + duration.mul_f64(f),
                    from_pps + (to_pps - from_pps) * f,
                )
            })
            .collect();
        RateProfile {
            steps,
            period: None,
        }
    }

    /// A repeating day/night ("diurnal") schedule, the load shape behind
    /// the on-demand argument: services peak for part of every day and
    /// idle the rest, so dedicated capacity is wasted off-peak.
    ///
    /// The rate follows `base + (peak - base) · sin(π·x)^(2·sharpness)`
    /// where `x` is the position within the period after advancing the
    /// clock by `phase`; the "midday" peak lands at
    /// `period/2 - phase (mod period)`. Higher `sharpness` concentrates
    /// the peak into a shorter busy window (1 ≈ half the day busy, 4 ≈ a
    /// quarter). The curve is discretised into `n` equal steps per period
    /// and repeats forever.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn diurnal(
        base_pps: f64,
        peak_pps: f64,
        period: Nanos,
        phase: Nanos,
        sharpness: u32,
        n: usize,
    ) -> Self {
        assert!(period > Nanos::ZERO, "diurnal period must be positive");
        let n = n.max(2);
        let phase_frac = phase.as_nanos() as f64 / period.as_nanos() as f64;
        let steps = (0..n)
            .map(|i| {
                // Sample each step at its midpoint so the discretised
                // schedule straddles rather than lags the curve.
                let x = ((i as f64 + 0.5) / n as f64 + phase_frac).rem_euclid(1.0);
                let day = (std::f64::consts::PI * x).sin().powi(2 * sharpness as i32);
                (
                    period.mul_f64(i as f64 / n as f64),
                    base_pps + (peak_pps - base_pps) * day,
                )
            })
            .collect();
        RateProfile {
            steps,
            period: Some(period),
        }
    }

    /// The rate in effect at time `t`.
    pub fn rate_at(&self, t: Nanos) -> f64 {
        let t = match self.period {
            Some(p) => Nanos::from_nanos(t.as_nanos() % p.as_nanos()),
            None => t,
        };
        let idx = self.steps.partition_point(|&(s, _)| s <= t);
        if idx == 0 {
            0.0
        } else {
            self.steps[idx - 1].1
        }
    }

    /// Duration-weighted mean rate over `[0, until)`, integrating the
    /// piecewise-constant schedule exactly (uneven step spacing and
    /// periodic wrap-around both handled).
    ///
    /// # Panics
    ///
    /// Panics if `until` is zero.
    pub fn mean_rate_pps(&self, until: Nanos) -> f64 {
        assert!(until > Nanos::ZERO, "mean over an empty span");
        let until_ns = until.as_nanos();
        let mut acc = 0.0;
        let mut t = 0u64;
        while t < until_ns {
            let rate = self.rate_at(Nanos::from_nanos(t));
            let next = self.next_change_after(t).unwrap_or(until_ns).min(until_ns);
            acc += rate * (next - t) as f64;
            t = next;
        }
        acc / until_ns as f64
    }

    /// The first instant strictly after `t` (in absolute nanoseconds) at
    /// which the schedule's rate can change.
    fn next_change_after(&self, t: u64) -> Option<u64> {
        match self.period {
            Some(p) => {
                let p_ns = p.as_nanos();
                let base = t / p_ns * p_ns;
                let local = Nanos::from_nanos(t % p_ns);
                let idx = self.steps.partition_point(|&(s, _)| s <= local);
                match self.steps.get(idx) {
                    Some(&(s, _)) => Some(base + s.as_nanos()),
                    // Wrap: the next change is the start of the next period.
                    None => Some(base + p_ns),
                }
            }
            None => {
                let idx = self.steps.partition_point(|&(s, _)| s.as_nanos() <= t);
                self.steps.get(idx).map(|&(s, _)| s.as_nanos())
            }
        }
    }
}

/// Builds the next packet to emit; `seq` counts emitted packets.
pub type PacketFactory = Box<dyn FnMut(&mut Rng, u64) -> Packet>;

const TAG_SEND: u64 = 1;

/// An open-loop paced packet source.
pub struct OsntSource {
    profile: RateProfile,
    factory: PacketFactory,
    sent: u64,
    stopped: bool,
}

impl OsntSource {
    /// Creates a source following `profile`, emitting packets from
    /// `factory` on port 0.
    pub fn new(profile: RateProfile, factory: PacketFactory) -> Self {
        OsntSource {
            profile,
            factory,
            sent: 0,
            stopped: false,
        }
    }

    /// Packets emitted so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Replaces the rate profile (takes effect at the next send tick).
    pub fn set_profile(&mut self, profile: RateProfile) {
        self.profile = profile;
    }

    /// Stops the source permanently.
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    fn schedule(&mut self, ctx: &mut Ctx<'_, Packet>) {
        if self.stopped {
            return;
        }
        let rate = self.profile.rate_at(ctx.now());
        let delay = if rate > 0.0 {
            Nanos::from_secs_f64(1.0 / rate)
        } else {
            Nanos::from_millis(1)
        };
        ctx.schedule_in(delay, TAG_SEND);
    }
}

impl Node<Packet> for OsntSource {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Packet>) {
        self.schedule(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Packet>, timer: Timer) {
        if timer.tag != TAG_SEND || self.stopped {
            return;
        }
        if self.profile.rate_at(ctx.now()) > 0.0 {
            let mut pkt = (self.factory)(ctx.rng(), self.sent);
            pkt.sent_at = ctx.now();
            pkt.id = self.sent;
            self.sent += 1;
            ctx.send(PortId::P0, pkt);
        }
        self.schedule(ctx);
    }

    fn label(&self) -> String {
        "osnt".to_string()
    }

    impl_node_any!();
}

/// A packet sink that counts and optionally tracks latency from
/// `sent_at` stamps (the Endace DAG role in §4.1).
#[derive(Default)]
pub struct PacketSink {
    /// Packets received.
    pub received: u64,
    /// Latency histogram from source timestamps.
    pub latency: inc_sim::Histogram,
}

impl Node<Packet> for PacketSink {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Packet>, _port: PortId, msg: Packet) {
        self.received += 1;
        self.latency.record_nanos(ctx.now() - msg.sent_at);
    }

    fn label(&self) -> String {
        "sink".to_string()
    }

    impl_node_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use inc_net::{build_udp, Endpoint};
    use inc_sim::{LinkSpec, Simulator};

    fn factory() -> PacketFactory {
        Box::new(|_rng, seq| {
            build_udp(
                Endpoint::host(1, 1000),
                Endpoint::host(2, 2000),
                &seq.to_be_bytes(),
            )
        })
    }

    #[test]
    fn constant_rate_is_precise() {
        let mut sim = Simulator::new(0);
        let src = sim.add_node(OsntSource::new(RateProfile::constant(10_000.0), factory()));
        let dst = sim.add_node(PacketSink::default());
        sim.connect(src, PortId::P0, dst, PortId::P0, LinkSpec::ideal());
        sim.run_until(Nanos::from_secs(1));
        let got = sim.node_ref::<PacketSink>(dst).received;
        assert!((9_990..=10_010).contains(&got), "{got}");
    }

    #[test]
    fn profile_steps_change_rate() {
        let mut sim = Simulator::new(0);
        let profile = RateProfile::steps(vec![
            (Nanos::ZERO, 1_000.0),
            (Nanos::from_millis(500), 100_000.0),
        ]);
        let src = sim.add_node(OsntSource::new(profile, factory()));
        let dst = sim.add_node(PacketSink::default());
        sim.connect(src, PortId::P0, dst, PortId::P0, LinkSpec::ideal());
        sim.run_until(Nanos::from_millis(500));
        let at_switch = sim.node_ref::<PacketSink>(dst).received;
        sim.run_until(Nanos::from_secs(1));
        let total = sim.node_ref::<PacketSink>(dst).received;
        assert!((495..=505).contains(&at_switch), "{at_switch}");
        assert!(
            (49_000..=51_000).contains(&(total - at_switch)),
            "{}",
            total - at_switch
        );
    }

    #[test]
    fn diurnal_peaks_at_midday_and_repeats() {
        let day = Nanos::from_secs(10);
        let p = RateProfile::diurnal(1_000.0, 100_000.0, day, Nanos::ZERO, 1, 100);
        // Midnight is quiet, midday peaks, and the schedule repeats.
        assert!(p.rate_at(Nanos::ZERO) < 2_000.0);
        let midday = p.rate_at(Nanos::from_secs(5));
        assert!(midday > 99_000.0, "midday {midday}");
        let tomorrow = p.rate_at(Nanos::from_secs(15));
        assert!(
            (tomorrow - midday).abs() < 1_500.0,
            "{tomorrow} vs {midday}"
        );
        // A half-day phase moves the peak to midnight.
        let shifted = RateProfile::diurnal(1_000.0, 100_000.0, day, Nanos::from_secs(5), 1, 100);
        assert!(shifted.rate_at(Nanos::ZERO) > 99_000.0);
        assert!(shifted.rate_at(Nanos::from_secs(5)) < 2_000.0);
    }

    #[test]
    fn diurnal_sharpness_narrows_the_busy_window() {
        let day = Nanos::from_secs(10);
        let broad = RateProfile::diurnal(0.0, 100_000.0, day, Nanos::ZERO, 1, 200);
        let narrow = RateProfile::diurnal(0.0, 100_000.0, day, Nanos::ZERO, 4, 200);
        // sin^2 averages 1/2 over the day; sin^8 averages 35/128.
        assert!((broad.mean_rate_pps(day) - 50_000.0).abs() < 500.0);
        assert!((narrow.mean_rate_pps(day) - 100_000.0 * 35.0 / 128.0).abs() < 500.0);
        // The mean over two whole days equals the one-day mean.
        assert!((broad.mean_rate_pps(day + day) - broad.mean_rate_pps(day)).abs() < 1e-9);
        // Off-peak shoulder: the narrow profile is already quiet.
        assert!(narrow.rate_at(Nanos::from_secs(2)) < broad.rate_at(Nanos::from_secs(2)));
    }

    #[test]
    fn mean_rate_weights_uneven_steps_by_duration() {
        // 9 s at 100 kpps then quiet: the mean over 10 s is 90 kpps, not
        // the unweighted step average of 50 kpps.
        let p = RateProfile::steps(vec![(Nanos::ZERO, 100_000.0), (Nanos::from_secs(9), 0.0)]);
        let mean = p.mean_rate_pps(Nanos::from_secs(10));
        assert!((mean - 90_000.0).abs() < 1e-6, "{mean}");
        // An aperiodic profile holds its last rate forever.
        let mean20 = p.mean_rate_pps(Nanos::from_secs(20));
        assert!((mean20 - 45_000.0).abs() < 1e-6, "{mean20}");
    }

    #[test]
    fn diurnal_drives_a_source() {
        let mut sim = Simulator::new(0);
        let day = Nanos::from_millis(200);
        let profile = RateProfile::diurnal(0.0, 50_000.0, day, Nanos::ZERO, 1, 50);
        let src = sim.add_node(OsntSource::new(profile, factory()));
        let dst = sim.add_node(PacketSink::default());
        sim.connect(src, PortId::P0, dst, PortId::P0, LinkSpec::ideal());
        sim.run_until(Nanos::from_millis(400));
        // Two full days at a mean of 25 kpps -> ~10k packets.
        let got = sim.node_ref::<PacketSink>(dst).received;
        assert!((9_000..=11_000).contains(&got), "{got}");
    }

    #[test]
    fn ramp_rate_monotone() {
        let p = RateProfile::ramp(0.0, 1_000.0, Nanos::ZERO, Nanos::from_secs(10), 10);
        assert!(p.rate_at(Nanos::from_secs(1)) < p.rate_at(Nanos::from_secs(9)));
        assert_eq!(p.rate_at(Nanos::from_secs(20)), 900.0);
    }

    #[test]
    fn zero_rate_emits_nothing_until_step() {
        let mut sim = Simulator::new(0);
        let profile = RateProfile::steps(vec![
            (Nanos::ZERO, 0.0),
            (Nanos::from_millis(100), 10_000.0),
        ]);
        let src = sim.add_node(OsntSource::new(profile, factory()));
        let dst = sim.add_node(PacketSink::default());
        sim.connect(src, PortId::P0, dst, PortId::P0, LinkSpec::ideal());
        sim.run_until(Nanos::from_millis(99));
        assert_eq!(sim.node_ref::<PacketSink>(dst).received, 0);
        sim.run_until(Nanos::from_millis(200));
        assert!(sim.node_ref::<PacketSink>(dst).received > 900);
    }

    #[test]
    fn stop_halts_emission() {
        let mut sim = Simulator::new(0);
        let src = sim.add_node(OsntSource::new(RateProfile::constant(10_000.0), factory()));
        let dst = sim.add_node(PacketSink::default());
        sim.connect(src, PortId::P0, dst, PortId::P0, LinkSpec::ideal());
        sim.run_until(Nanos::from_millis(100));
        sim.node_mut::<OsntSource>(src).stop();
        let before = sim.node_ref::<PacketSink>(dst).received;
        sim.run_until(Nanos::from_millis(200));
        assert_eq!(sim.node_ref::<PacketSink>(dst).received, before);
    }
}
